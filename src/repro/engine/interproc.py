"""Refine and restore across function calls (§6.1, Table 2) and the
summary application / disjoint-exit-state partitioning of §6.3.

Refine retargets the extension state from the caller's scope into the
callee's; restore maps it back.  The Table 2 rules -- and their
generalization "at all levels of indirection" -- are implemented as tree
substitution: wherever the actual parameter's tree occurs inside a tracked
object, it is replaced by the formal parameter (or, for ``&x`` actuals, by
``*formal``), and inversely on return.
"""

from repro.cfront import astnodes as ast
from repro.metal.sm import PLACEHOLDER, STOP
from repro.engine.state import SMInstance, VarInstance
from repro.engine.summaries import ADD, TRANSITION


class ArgumentMap:
    """The actual<->formal correspondence for one callsite."""

    def __init__(self, call, callee_decl):
        self.pairs = []  # (actual_tree, base_tree, formal_name, addrof)
        for actual, param in zip(call.args, callee_decl.params):
            if param.name is None:
                continue
            if isinstance(actual, ast.Unary) and actual.op == "&" and not actual.postfix:
                # Rule 2: &xa passed as xf -- state(xa) becomes state(*xf).
                self.pairs.append((actual, actual.operand, param.name, True))
            else:
                self.pairs.append((actual, actual, param.name, False))

    def to_callee(self, obj):
        """Map a caller-scope object into the callee scope, or None."""
        for __, base, formal, addrof in self.pairs:
            base_key = ast.structural_key(base)
            if not _mentions_subtree(obj, base_key):
                continue
            if addrof:
                replacement = ast.Unary("*", ast.Ident(formal))
            else:
                replacement = ast.Ident(formal)
            return simplify(_substitute(obj, base_key, replacement))
        return None

    def to_caller(self, obj):
        """Map a callee-scope object back into the caller scope, or None if
        it does not involve any formal parameter."""
        for __, base, formal, addrof in self.pairs:
            formal_key = ast.structural_key(ast.Ident(formal))
            if not _mentions_subtree(obj, formal_key):
                continue
            if addrof:
                replacement = ast.Unary("&", base)
            else:
                replacement = base
            return simplify(_substitute(obj, formal_key, replacement))
        return None

    def formal_names(self):
        return {formal for __, __, formal, __ in self.pairs}


def _mentions_subtree(tree, key):
    return any(ast.structural_key(node) == key for node in tree.walk())


def _substitute(tree, key, replacement):
    """A copy of ``tree`` with every subtree matching ``key`` replaced."""
    if ast.structural_key(tree) == key:
        return replacement
    clone = _shallow_copy(tree)
    for field in tree._fields:
        value = getattr(tree, field)
        if isinstance(value, ast.Node):
            setattr(clone, field, _substitute(value, key, replacement))
        elif isinstance(value, (list, tuple)):
            setattr(
                clone,
                field,
                [
                    _substitute(item, key, replacement)
                    if isinstance(item, ast.Node)
                    else item
                    for item in value
                ],
            )
    return clone


def _shallow_copy(node):
    import copy

    return copy.copy(node)


def simplify(tree):
    """Normalize ``*(&x)`` to ``x`` and ``&(*x)`` to ``x`` after
    substitution."""
    if isinstance(tree, ast.Unary) and not tree.postfix:
        inner = simplify(tree.operand)
        if (
            tree.op == "*"
            and isinstance(inner, ast.Unary)
            and inner.op == "&"
            and not inner.postfix
        ):
            return inner.operand
        if (
            tree.op == "&"
            and isinstance(inner, ast.Unary)
            and inner.op == "*"
            and not inner.postfix
        ):
            return inner.operand
        clone = _shallow_copy(tree)
        clone.operand = inner
        return clone
    clone = _shallow_copy(tree)
    for field in tree._fields:
        value = getattr(tree, field)
        if isinstance(value, ast.Node):
            setattr(clone, field, simplify(value))
        elif isinstance(value, (list, tuple)):
            setattr(
                clone,
                field,
                [simplify(v) if isinstance(v, ast.Node) else v for v in value],
            )
    return clone


def refine(sm, argmap, caller_scope_names, callee_file=None):
    """Refine the extension state into the callee's scope (§6.1).

    Returns ``(refined_sm, saved_instances)``.  The global instance passes
    unchanged; objects reachable through arguments are retargeted; state on
    caller locals is saved and deleted; file-scope variables from other
    files are temporarily inactivated.
    """
    refined = SMInstance(sm.extension, sm.gstate)
    saved = []
    for inst in sm.active_vars:
        mapped = argmap.to_callee(inst.obj)
        if mapped is not None:
            clone = inst.copy()
            clone.retarget(mapped)
            refined.add(clone)
            continue
        names = ast.identifiers_in(inst.obj)
        if names & caller_scope_names:
            saved.append(inst)
            continue
        clone = inst.copy()
        if (
            clone.file_scope_file is not None
            and callee_file is not None
            and clone.file_scope_file != callee_file
        ):
            clone.inactive = True
        refined.add(clone)
    return refined, saved


def collect_applicable_edges(refined_sm, function_summary):
    """Step 3: the set of summary edges that apply to the current state.

    Returns ``(assignments, add_edges, global_edges, unmatched)`` where
    assignments maps each live instance to its applicable transition edges.
    """
    gstate = refined_sm.gstate
    live = refined_sm.live_instances()
    assignments = []
    unmatched = []
    for inst in live:
        start = inst.tuple_key(gstate)
        edges = [
            e for e in function_summary.with_start(start) if e.kind == TRANSITION
        ]
        if edges:
            assignments.append((inst, edges))
        else:
            unmatched.append(inst)

    add_edges = []
    live_keys = {inst.obj_key for inst in live}
    for edge in function_summary:
        if edge.kind != ADD or edge.start[0] != gstate:
            continue
        obj_key = edge.start[1][1]
        if obj_key in live_keys:
            continue  # "the edge only applies when we know nothing about t"
        add_edges.append(edge)

    global_edges = [
        e
        for e in function_summary
        if e.is_global_only
        and not e.relax_only
        and e.start == (gstate, PLACEHOLDER)
    ]
    return assignments, add_edges, global_edges, unmatched


def partition_exit_states(refined_sm, assignments, add_edges, global_edges):
    """Steps 4-5: partition applicable edges into disjoint exit states.

    Each partition holds edges with one global end value and at most one
    edge per program object; every partition becomes a new SMInstance.
    """
    items = []
    for inst, edges in assignments:
        for edge in edges:
            items.append((inst, edge))
    for edge in add_edges:
        items.append((None, edge))

    partitions = []  # (gstate, {obj_key: (source_inst, edge)})
    for source, edge in items:
        end_gstate = edge.end[0]
        obj_key = edge.end[1][1] if edge.end[1] != PLACEHOLDER else None
        placed = False
        for part in partitions:
            if part["gstate"] != end_gstate:
                continue
            if obj_key in part["objs"]:
                continue
            part["objs"][obj_key] = (source, edge)
            placed = True
            break
        if not placed:
            partitions.append({"gstate": end_gstate, "objs": {obj_key: (source, edge)}})

    if not partitions:
        # No instance edges: exit states come from global edges alone.
        end_gstates = sorted({e.end[0] for e in global_edges}) or [refined_sm.gstate]
        partitions = [{"gstate": g, "objs": {}} for g in end_gstates]

    out = []
    seen = set()
    for part in partitions:
        new_sm = SMInstance(refined_sm.extension, part["gstate"])
        for obj_key, (source, edge) in part["objs"].items():
            snapshot = edge.end_snapshot
            if snapshot is None:
                continue
            value = edge.end[1][2]
            if value == STOP:
                continue
            if source is not None:
                inst = source.copy()
                inst.value = snapshot.value
                inst.data = dict(snapshot.data)
                inst.retarget(snapshot.obj)
            else:
                inst = snapshot.copy()
                VarInstance._next_uid[0] += 1
                inst.uid = VarInstance._next_uid[0]
            new_sm.add(inst)
        fingerprint = (
            new_sm.gstate,
            frozenset(
                (i.obj_key, i.value, i.data_key()) for i in new_sm.active_vars
            ),
        )
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        out.append(new_sm)
    return out


def restore(partition_sms, saved, argmap, original_sm, callee_local_names):
    """Step 4/6: map callee-scope exit states back to the caller and
    re-attach saved caller-local state.

    Inactive file-scope instances and global objects pass back unchanged;
    objects involving callee locals are dropped.
    """
    restored = []
    for part in partition_sms:
        new_sm = SMInstance(original_sm.extension, part.gstate)
        for inst in part.active_vars:
            mapped = argmap.to_caller(inst.obj)
            if mapped is not None:
                clone = inst.copy()
                clone.retarget(mapped)
                new_sm.add(clone)
                continue
            names = ast.identifiers_in(inst.obj)
            if names & callee_local_names or names & argmap.formal_names():
                continue  # callee-local object: leaves scope
            new_sm.add(inst.copy())
        for inst in saved:
            if new_sm.find(inst.obj_key) is None:
                new_sm.add(inst.copy())
        restored.append(new_sm)
    return restored
