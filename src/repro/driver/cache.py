"""The persistent, content-addressed two-tier cache behind incremental runs.

Tier 1 -- emitted ASTs.  The paper's pass 1 "compiles each file in
isolation, emitting ASTs" (§6); those emitted files are re-runnable
artifacts.  We key each one by what actually determines its contents:

    key = SHA-256( parser version
                 || filename
                 || include-path configuration
                 || -D define configuration
                 || preprocessed token stream )

Hashing the *preprocessed* tokens means edits to any transitively included
header invalidate every file that saw it, while whitespace/comment-only
edits still hit.  A warm cache turns pass 1 into pure ``load_emitted``
work: zero re-parses.

Tier 2 -- summary/report frames (:class:`SummaryCache`).  Pass 2's
per-root outcomes (:class:`repro.engine.summaries.RootArtifact`) are
persisted under the same directory, keyed by session signature plus the
root's Merkle *function fingerprint*
(:mod:`repro.cfg.fingerprint`), so a warm incremental run replays clean
roots instead of re-traversing them (docs/DRIVER.md, "Incremental
re-analysis").

Both tiers share one frame format: a pickle preceded by a magic marker
and a SHA-256 checksum of the pickle.  The checksum is verified on every
read: a truncated, garbled, or version-skewed entry raises
:class:`CacheCorruption` instead of crashing (or silently poisoning) the
run, and the driver evicts it and re-derives the content (re-parse for
tier 1, re-analyze for tier 2).  Bare-unit pickles from older emit dirs
still load -- they just have no checksum to verify.
"""

import contextlib
import hashlib
import json
import os
import pickle
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro import faults
from repro.engine.summaries import SUMMARY_VERSION

#: Bump when parser/astnodes change shape: old cache entries stop matching.
PARSER_VERSION = "1"

#: Payload format marker for emitted .ast files.
AST_FORMAT_VERSION = 2

#: Payload format marker for summary (.sum) frames.  2: RootArtifact
#: carries an annotation/user-global delta; manifests record the frame
#: and AST keys the run used (cache GC liveness).
SUMMARY_FORMAT_VERSION = 2

#: Leading magic of a framed payload: marker + 32-byte SHA-256 of the
#: pickle that follows.
FRAME_MAGIC = b"XGCCAST\x02"
_FRAME_HEADER = len(FRAME_MAGIC) + 32

#: Frame magic for tier-2 summary frames (same layout, distinct marker so
#: the tiers can never be confused for one another).
SUMMARY_MAGIC = b"XGCCSUM\x01"
_SUMMARY_HEADER = len(SUMMARY_MAGIC) + 32


class CacheCorruption(Exception):
    """An emitted/cached payload that cannot be trusted: truncated,
    garbled, checksum-mismatched, or written by a different parser
    version.  Callers evict and re-parse instead of crashing."""


def cache_key(filename, tokens, include_paths=(), defines=None):
    """The content-addressed key for one preprocessed file."""
    digest = hashlib.sha256()
    digest.update(PARSER_VERSION.encode())
    digest.update(b"\x00")
    digest.update(str(filename).encode())
    digest.update(b"\x00")
    for path in include_paths:
        digest.update(str(path).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for name, value in sorted((defines or {}).items()):
        digest.update(("%s=%s" % (name, value)).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for token in tokens:
        digest.update(token.kind.name.encode())
        digest.update(b"\x1f")
        digest.update(token.value.encode())
        digest.update(b"\x1e")
    return digest.hexdigest()


def pack_frame(magic, payload_obj):
    """Frame an arbitrary picklable payload: magic + SHA-256 + pickle."""
    payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    return magic + hashlib.sha256(payload).digest() + payload


def unpack_frame(magic, data):
    """The verified payload object of a frame written by
    :func:`pack_frame`; raises :class:`CacheCorruption` on a wrong
    marker, checksum mismatch, or unreadable pickle."""
    header = len(magic) + 32
    if data[: len(magic)] != magic:
        raise CacheCorruption("bad frame magic (wrong tier or not a frame)")
    digest = data[len(magic):header]
    payload = data[header:]
    if len(data) < header or hashlib.sha256(payload).digest() != digest:
        raise CacheCorruption(
            "checksum mismatch (truncated or garbled payload)"
        )
    try:
        return pickle.loads(payload)
    except Exception as err:
        raise CacheCorruption("unreadable payload: %r" % err)


def pack_unit(unit, source_bytes):
    """Serialize a translation unit into the emitted .ast payload."""
    return pack_frame(
        FRAME_MAGIC,
        {
            "format": AST_FORMAT_VERSION,
            "parser_version": PARSER_VERSION,
            "filename": unit.filename,
            "source_bytes": source_bytes,
            "unit": unit,
        },
    )


def unpack(data):
    """``(unit, source_bytes)`` from an emitted payload.

    Verifies the frame checksum (framed payloads) and the recorded
    parser version; raises :class:`CacheCorruption` on anything
    untrustworthy.  ``source_bytes`` is 0 for legacy bare-unit pickles.
    """
    if data[: len(FRAME_MAGIC)] == FRAME_MAGIC:
        obj = unpack_frame(FRAME_MAGIC, data)
    else:
        # legacy unframed pickle
        try:
            obj = pickle.loads(data)
        except Exception as err:
            raise CacheCorruption("unreadable payload: %r" % err)
    if isinstance(obj, dict) and "unit" in obj:
        version = obj.get("parser_version")
        if version != PARSER_VERSION:
            raise CacheCorruption(
                "parser version skew: entry says %r, this build is %r"
                % (version, PARSER_VERSION)
            )
        unit, source_bytes = obj["unit"], int(obj.get("source_bytes") or 0)
    else:
        unit, source_bytes = obj, 0
    if not hasattr(unit, "decls"):
        raise CacheCorruption(
            "payload is not a translation unit: %r" % type(unit)
        )
    return unit, source_bytes


class AstCache:
    """Content-addressed store of emitted ASTs under one directory."""

    def __init__(self, root):
        self.root = root

    def path_for(self, key):
        return os.path.join(self.root, key[:2], key + ".ast")

    def lookup(self, key):
        """The on-disk path for ``key``, or None on a miss."""
        path = self.path_for(key)
        return path if os.path.exists(path) else None

    def load(self, key):
        """``(unit, source_bytes, emitted_bytes)`` for a cached key.

        Raises :class:`CacheCorruption` for untrustworthy entries.  A
        successful load refreshes the entry's mtime, so frames a warm
        session keeps replaying never age past the GC cutoff.
        """
        path = self.path_for(key)
        with open(path, "rb") as handle:
            data = handle.read()
        unit, source_bytes = unpack(data)
        touch_entry(path)
        return unit, source_bytes, len(data)

    def store(self, key, data):
        """Atomically write a payload; safe under concurrent writers."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        spec = faults.fires("cache.corrupt", key=key)
        if spec is not None:
            corrupt_entry(path, spec.get("mode", "truncate"))
        return path

    def evict(self, key):
        """Drop a (corrupt) entry; the next probe for ``key`` misses."""
        path = self.path_for(key)
        try:
            os.remove(path)
            return True
        except FileNotFoundError:
            return False


def pack_artifact(artifact):
    """Serialize one per-root outcome into a framed .sum payload."""
    return pack_frame(
        SUMMARY_MAGIC,
        {
            "format": SUMMARY_FORMAT_VERSION,
            "summary_version": SUMMARY_VERSION,
            "artifact": artifact,
        },
    )


def unpack_artifact(data):
    """The :class:`repro.engine.summaries.RootArtifact` of a framed .sum
    payload; raises :class:`CacheCorruption` on anything untrustworthy,
    including frames written by a different summary format or engine
    summary version."""
    obj = unpack_frame(SUMMARY_MAGIC, data)
    if not isinstance(obj, dict) or "artifact" not in obj:
        raise CacheCorruption("summary frame has no artifact")
    if obj.get("format") != SUMMARY_FORMAT_VERSION:
        raise CacheCorruption(
            "summary format skew: entry says %r, this build is %r"
            % (obj.get("format"), SUMMARY_FORMAT_VERSION)
        )
    if obj.get("summary_version") != SUMMARY_VERSION:
        raise CacheCorruption(
            "engine summary version skew: entry says %r, this build is %r"
            % (obj.get("summary_version"), SUMMARY_VERSION)
        )
    return obj["artifact"]


class SummaryCache:
    """Tier 2: per-root summary/report frames plus the session manifest.

    Frames are keyed by the session signature and the root's Merkle
    fingerprint (the key is computed by the incremental session, see
    :mod:`repro.driver.session`), so an entry can only ever be replayed
    into a run whose extensions, options, and transitive callee cone all
    match the run that produced it.
    """

    def __init__(self, root):
        self.root = root

    def path_for(self, key):
        return os.path.join(self.root, key[:2], key + ".sum")

    def lookup(self, key):
        """The on-disk path for ``key``, or None on a miss."""
        path = self.path_for(key)
        return path if os.path.exists(path) else None

    def load(self, key):
        """The cached :class:`RootArtifact` for ``key``.

        Raises :class:`CacheCorruption` for untrustworthy entries.  A
        successful load refreshes the frame's mtime: a frame a warm
        session (or daemon) replays daily must read as *in use* to the
        GC's ``mtime >= cutoff`` keep rule, not as untouched since the
        run that stored it.
        """
        path = self.path_for(key)
        with open(path, "rb") as handle:
            data = handle.read()
        artifact = unpack_artifact(data)
        touch_entry(path)
        return artifact

    def touch(self, key):
        """Refresh a frame's mtime without reading it (in-memory warm
        hits still count as GC liveness)."""
        touch_entry(self.path_for(key))

    def store(self, key, artifact):
        """Atomically persist one per-root outcome."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as handle:
            handle.write(pack_artifact(artifact))
        os.replace(tmp, path)
        spec = faults.fires("summary.corrupt", key=key)
        if spec is not None:
            corrupt_entry(path, spec.get("mode", "truncate"))
        return path

    def evict(self, key):
        """Drop a (corrupt) entry; the next probe for ``key`` misses."""
        path = self.path_for(key)
        try:
            os.remove(path)
            return True
        except FileNotFoundError:
            return False

    # -- session manifest -------------------------------------------------
    #
    # One JSON document per session signature recording the fingerprint of
    # every function the last completed run saw.  Diffing the manifest
    # against freshly computed fingerprints yields the dirty function set.

    def manifest_path(self, signature):
        return os.path.join(self.root, "manifest-%s.json" % signature[:32])

    def load_manifest_document(self, signature):
        """The full manifest document for a signature, or None when
        absent/unreadable/skewed."""
        try:
            with open(self.manifest_path(signature)) as handle:
                obj = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(obj, dict)
            or obj.get("format") != SUMMARY_FORMAT_VERSION
            or obj.get("signature") != signature
            or not isinstance(obj.get("fingerprints"), dict)
        ):
            return None
        return obj

    def load_manifest(self, signature):
        """``{function: fingerprint}`` from the last run under this
        signature, or None when absent/unreadable (a garbled manifest
        degrades to a cold run, never a crash)."""
        obj = self.load_manifest_document(signature)
        if obj is None:
            return None
        return obj["fingerprints"]

    def store_manifest(self, signature, fingerprints, frame_keys=(),
                       ast_keys=(), stats=None):
        """Record the fingerprints of a completed run.

        A read-merge-write under a per-signature lockfile: entries from
        a concurrent session (functions we did not fingerprint this run,
        frame/AST keys we did not touch) are preserved rather than
        clobbered, so two incremental sessions sharing one cache
        directory both keep their warm state.  For functions both runs
        saw, this run's fingerprint wins.  ``frame_keys``/``ast_keys``
        are the tier-2/tier-1 entries this run stored or replayed; GC
        treats them as live as long as the manifest is fresh.
        """
        spec = faults.fires("summary.manifest", key=signature)
        if spec is not None:
            # Fault injection: a rival session completes its manifest
            # store in the window before ours.  The merge below must
            # preserve its entries.
            self._merge_manifest(
                signature,
                dict(spec.get("fingerprints") or {"__rival__": ["r", "r"]}),
                spec.get("frame_keys") or (),
                spec.get("ast_keys") or (),
                None,
            )
        return self._merge_manifest(
            signature, fingerprints, frame_keys, ast_keys, stats)

    def _merge_manifest(self, signature, fingerprints, frame_keys,
                        ast_keys, stats):
        path = self.manifest_path(signature)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with _file_lock(path + ".lock", stats=stats):
            existing = self.load_manifest_document(signature)
            merged = dict(fingerprints)
            frames = set(frame_keys)
            asts = set(ast_keys)
            if existing is not None:
                theirs = existing["fingerprints"]
                for name, entry in theirs.items():
                    merged.setdefault(name, entry)
                frames.update(existing.get("frame_keys") or ())
                asts.update(existing.get("ast_keys") or ())
                if stats is not None and set(theirs) - set(fingerprints):
                    stats.add("manifest_merges")
            tmp = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp, "w") as handle:
                json.dump(
                    {
                        "format": SUMMARY_FORMAT_VERSION,
                        "signature": signature,
                        "fingerprints": merged,
                        "frame_keys": sorted(frames),
                        "ast_keys": sorted(asts),
                    },
                    handle,
                    sort_keys=True,
                )
            os.replace(tmp, path)
        return path


#: Lockfile-fallback tuning (non-``fcntl`` platforms): how long one
#: waiter retries before it declares the holder dead, and how old an
#: ``.excl`` lockfile must be before it is stolen as stale.
_LOCK_FALLBACK_TIMEOUT = 10.0
_LOCK_FALLBACK_STALE = 30.0


@contextlib.contextmanager
def _file_lock(path, stats=None):
    """An exclusive advisory lock around a read-merge-write cycle.

    With ``fcntl`` available this is a plain ``flock``.  Without it the
    lock does NOT silently become a no-op (that would quietly drop the
    read-merge-write concurrency guarantee): it falls back to an
    ``O_CREAT | O_EXCL`` lockfile with bounded retry, counted in
    ``stats`` as ``manifest_lock_fallbacks`` so the degraded locking
    discipline is visible in ``--stats-json``.  A lockfile older than
    :data:`_LOCK_FALLBACK_STALE` seconds (crashed holder) is stolen;
    a waiter that exhausts :data:`_LOCK_FALLBACK_TIMEOUT` steals too
    rather than wedging — the write itself stays atomic (tmp +
    replace), so the worst case is a lost merge, never corruption.
    """
    if fcntl is not None:
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield True
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        return
    if stats is not None:
        stats.add("manifest_lock_fallbacks")
    excl = path + ".excl"
    deadline = time.monotonic() + _LOCK_FALLBACK_TIMEOUT
    while True:
        try:
            fd = os.open(excl, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            break
        except FileExistsError:
            try:
                stale = time.time() - os.path.getmtime(excl)
            except OSError:
                continue  # holder released between open and stat: retry
            if stale > _LOCK_FALLBACK_STALE or time.monotonic() > deadline:
                # Crashed holder (or one outliving any sane merge):
                # steal the lock instead of wedging every later writer.
                try:
                    os.remove(excl)
                except OSError:
                    pass
                continue
            time.sleep(0.01)
    try:
        os.close(fd)
        yield True
    finally:
        try:
            os.remove(excl)
        except OSError:
            pass


def _manifest_files(summaries_dir):
    """Sorted manifest paths currently present under a summaries dir."""
    try:
        names = sorted(os.listdir(summaries_dir))
    except OSError:
        return []
    return [
        os.path.join(summaries_dir, name)
        for name in names
        if name.startswith("manifest-") and name.endswith(".json")
    ]


def collect_cache_garbage(cache_dir, summaries_subdir="summaries",
                          cutoff_days=30.0, now=None, stats=None,
                          extra_live_sum=(), extra_live_ast=(),
                          _after_scan=None):
    """Sweep stale content-addressed entries from a cache directory.

    Liveness comes from the manifests: every manifest newer than the
    cutoff pins the tier-1 (``.ast``) and tier-2 (``.sum``) keys it
    recorded.  The sweep drops (a) manifests older than the cutoff and
    (b) frames that are both unpinned and older than the cutoff — a
    frame younger than the cutoff is kept even when unreferenced, so
    plain (non-incremental) cache users and in-flight sessions are never
    raced.  ``extra_live_sum`` / ``extra_live_ast`` are additional
    pinned keys (a live daemon's in-memory warm state) treated exactly
    like manifest pins.

    Concurrency: the pinned-key read and the frame sweep run as one
    critical section *under every fresh manifest's per-signature lock*.
    A rival session's read-merge-write either completes before the
    sweep (its pins are re-read and honoured) or blocks until the sweep
    is done — and any frame such a late merge pins was just stored or
    warm-loaded, so its refreshed mtime keeps it past the cutoff
    regardless.  Frames and manifests vanishing mid-sweep (another GC,
    an eviction) are tolerated, never fatal.

    ``_after_scan`` is a test-only hook running between the stale-
    manifest drop and the locked pin-read/sweep section, where the
    pre-fix implementation raced rival merges.

    Returns the eviction counters; also folded into ``stats`` when
    given.
    """
    now = time.time() if now is None else now
    cutoff = now - float(cutoff_days) * 86400.0
    counters = {
        "gc_manifests_dropped": 0,
        "gc_summary_frames_dropped": 0,
        "gc_ast_frames_dropped": 0,
        "gc_frames_kept": 0,
    }
    summaries_dir = os.path.join(cache_dir, summaries_subdir)
    for path in _manifest_files(summaries_dir):
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            continue
        if mtime < cutoff:
            with _file_lock(path + ".lock", stats=stats):
                try:
                    os.remove(path)
                    counters["gc_manifests_dropped"] += 1
                except OSError:
                    pass

    if _after_scan is not None:
        _after_scan()

    def sweep(root, suffix, live, counter):
        if not os.path.isdir(root):
            return
        for sub in sorted(os.listdir(root)):
            subdir = os.path.join(root, sub)
            if len(sub) != 2 or not os.path.isdir(subdir):
                continue
            try:
                fnames = sorted(os.listdir(subdir))
            except OSError:
                continue
            for fname in fnames:
                if not fname.endswith(suffix):
                    continue
                key = fname[: -len(suffix)]
                path = os.path.join(subdir, fname)
                try:
                    mtime = os.path.getmtime(path)
                except OSError:
                    continue  # vanished mid-sweep: someone else's problem
                if key in live or mtime >= cutoff:
                    counters["gc_frames_kept"] += 1
                    continue
                try:
                    os.remove(path)
                    counters[counter] += 1
                except OSError:
                    pass

    live_sum, live_ast = set(extra_live_sum), set(extra_live_ast)
    with contextlib.ExitStack() as held:
        # Re-list and re-read pinned keys under the per-signature locks,
        # immediately before the sweep, holding them through it: a merge
        # that landed since the stale scan is seen, and one that lands
        # after can only pin freshly-touched (mtime-safe) frames.
        for path in _manifest_files(summaries_dir):
            held.enter_context(_file_lock(path + ".lock", stats=stats))
            try:
                with open(path) as handle:
                    obj = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(obj, dict):
                live_sum.update(obj.get("frame_keys") or ())
                live_ast.update(obj.get("ast_keys") or ())
        sweep(summaries_dir, ".sum", live_sum, "gc_summary_frames_dropped")
        sweep(cache_dir, ".ast", live_ast, "gc_ast_frames_dropped")
    if stats is not None:
        for name, value in counters.items():
            if value:
                stats.add(name, value)
    return counters


def touch_entry(path):
    """Refresh an entry's mtime (GC keeps what warm runs actually use);
    best-effort, a vanished or read-only entry is not an error."""
    try:
        os.utime(path, None)
    except OSError:
        pass


def corrupt_entry(path, mode="truncate"):
    """Damage an on-disk entry (fault injection / corruption tests).

    Modes mirror real failure shapes: "truncate" (full disk / killed
    writer), "garbage" (bit rot over the frame header), "version" (a
    structurally valid entry written by a different parser version --
    checksum intact, so only the version check catches it).
    """
    if mode == "truncate":
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
    elif mode == "garbage":
        with open(path, "r+b") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 16)
    elif mode == "version":
        with open(path, "rb") as handle:
            data = handle.read()
        if data[: len(SUMMARY_MAGIC)] == SUMMARY_MAGIC:
            magic, payload = SUMMARY_MAGIC, data[_SUMMARY_HEADER:]
        elif data[: len(FRAME_MAGIC)] == FRAME_MAGIC:
            magic, payload = FRAME_MAGIC, data[_FRAME_HEADER:]
        else:
            magic, payload = FRAME_MAGIC, data
        obj = pickle.loads(payload)
        if magic == SUMMARY_MAGIC:
            obj["summary_version"] = "0-skewed"
        else:
            obj["parser_version"] = "0-skewed"
        with open(path, "wb") as handle:
            handle.write(pack_frame(magic, obj))
    else:
        raise ValueError("unknown corruption mode: %r" % mode)
    return path
