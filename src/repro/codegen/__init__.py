"""Synthetic systems-code generation.

The paper evaluates on Linux/OpenBSD; those multi-MLOC trees are replaced
here by a deterministic generator that emits kernel-style C with *known*
injected bugs, so benchmarks can score found-vs-injected exactly (see
DESIGN.md, substitutions table).
"""

from repro.codegen.generator import (
    InjectedBug,
    KernelWorkload,
    generate_kernel_module,
)
from repro.codegen.project_gen import (
    FunctionEdit,
    GeneratedProject,
    apply_function_edits,
    generate_project,
    score_project,
)
from repro.codegen.scaling import diamond_function, tracked_objects_function

__all__ = [
    "InjectedBug",
    "KernelWorkload",
    "generate_kernel_module",
    "FunctionEdit",
    "GeneratedProject",
    "apply_function_edits",
    "generate_project",
    "score_project",
    "diamond_function",
    "tracked_objects_function",
]
