"""The two-pass analysis driver (§6).

"1. The first preprocessing pass compiles each file in isolation, emitting
ASTs to a temporary file.  These emitted files include all type
declarations, variable declarations, and code within the source file and
are typically four or five times larger than the text representation.

2. The second analysis pass reads these temporary files, reassembles
their ASTs, and constructs the CFG and call graph."

Pass 1 output is a pickle of the translation unit per file (our "emitted
AST" format); the size ratio claim is measured by
``benchmarks/bench_ast_emission.py``.
"""

import os
import pickle

from repro.cfront.parser import Parser
from repro.cfront.preproc import Preprocessor
from repro.cfg.callgraph import CallGraph
from repro.engine.analysis import Analysis, AnalysisOptions
from repro.cfront import astnodes as ast


class CompiledUnit:
    """Pass-1 output for one source file."""

    def __init__(self, filename, unit, source_bytes, emitted_bytes):
        self.filename = filename
        self.unit = unit
        self.source_bytes = source_bytes
        self.emitted_bytes = emitted_bytes

    @property
    def expansion_ratio(self):
        if not self.source_bytes:
            return 0.0
        return self.emitted_bytes / self.source_bytes


class Project:
    """A source base under analysis."""

    def __init__(self, include_paths=(), defines=None, emit_dir=None,
                 file_reader=None):
        self.include_paths = list(include_paths)
        self.defines = dict(defines or {})
        self.emit_dir = emit_dir
        #: Optional override for reading #include targets (e.g. in-memory
        #: trees from the project generator); defaults to the filesystem.
        self.file_reader = file_reader
        self.units = []
        self.compiled = []
        self.static_vars = {}
        self._callgraph = None

    # -- pass 1 -----------------------------------------------------------------

    def compile_text(self, text, filename="<string>"):
        """Pass 1 for in-memory source text."""
        pp = Preprocessor(self.include_paths, self.defines, self.file_reader)
        tokens = pp.preprocess_text(text, filename)
        parser = Parser(None, filename, tokens=tokens)
        unit = parser.parse_translation_unit()
        unit.filename = filename
        emitted = pickle.dumps(unit, protocol=pickle.HIGHEST_PROTOCOL)
        if self.emit_dir is not None:
            os.makedirs(self.emit_dir, exist_ok=True)
            out = os.path.join(
                self.emit_dir, os.path.basename(filename) + ".ast"
            )
            with open(out, "wb") as handle:
                handle.write(emitted)
        compiled = CompiledUnit(filename, unit, len(text.encode()), len(emitted))
        self.compiled.append(compiled)
        self._register(unit, filename)
        return compiled

    def compile_file(self, path):
        with open(path) as handle:
            return self.compile_text(handle.read(), path)

    def load_emitted(self, path):
        """Pass 2 entry: reassemble a pass-1 AST file."""
        with open(path, "rb") as handle:
            unit = pickle.loads(handle.read())
        self._register(unit, unit.filename)
        return unit

    def _register(self, unit, filename):
        self.units.append(unit)
        self._callgraph = None
        for decl in unit.decls:
            if isinstance(decl, ast.VarDecl) and decl.storage == "static":
                self.static_vars[decl.name] = filename

    # -- pass 2 ------------------------------------------------------------------

    @property
    def callgraph(self):
        if self._callgraph is None:
            self._callgraph = CallGraph.from_units(self.units)
        return self._callgraph

    def analysis(self, options=None):
        """Build the analysis engine over the reassembled source base."""
        return Analysis(
            callgraph=self.callgraph,
            options=options or AnalysisOptions(),
            static_vars=self.static_vars,
        )

    def run(self, extensions, options=None):
        """Apply extensions to the whole project."""
        return self.analysis(options).run(extensions)

    # -- reporting helpers ----------------------------------------------------------

    def total_source_bytes(self):
        return sum(c.source_bytes for c in self.compiled)

    def total_emitted_bytes(self):
        return sum(c.emitted_bytes for c in self.compiled)

    def total_functions(self):
        return sum(len(c.unit.functions()) for c in self.compiled)
