/* Declaration torture: every declarator form the parser supports. */

typedef unsigned long size_t;
typedef int (*handler_fn)(int, char *);
typedef struct list_head { struct list_head *next, *prev; } list_t;

static const char *names[4] = {"a", "b", "c", "d"};
int matrix[2][3] = {{1, 2, 3}, {4, 5, 6}};
char buffer[128];
int (*dispatch_table[8])(int, char *);
unsigned long long big = 0xFFFFFFFFFFFFULL;
signed char tiny = -1;
float ratio = 1.5e-3f;

enum state { IDLE, RUNNING = 5, DONE };
enum state current = IDLE;

union value { int i; float f; char bytes[4]; };

struct outer {
    struct inner { int x; } member;
    union value v;
    int bits : 3;
    int more_bits : 5;
    handler_fn callback;
    list_t links;
};

extern int external_counter;
static size_t cached_size;

int (*get_handler(int kind))(int, char *);

int apply(handler_fn fn, int n, char *arg) {
    if (!fn)
        return -1;
    return fn(n, arg);
}

int use_everything(struct outer *o, int idx) {
    o->member.x = matrix[1][idx % 3];
    o->v.i = (int)big;
    o->links.next = o->links.prev;
    cached_size = sizeof(struct outer) + sizeof o->v;
    return o->bits + (int)names[idx & 3][0];
}
