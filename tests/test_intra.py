"""Intraprocedural engine tests (Fig. 4): DFS, caching, path splits,
pending-split resolution, kills-by-default, StopPath."""

from conftest import lines, messages, run_checker

from repro.checkers import free_checker, lock_checker
from repro.engine.analysis import AnalysisOptions
from repro.metal import ANY_POINTER, Extension, compile_metal


class TestBasicDetection:
    def test_use_after_free(self):
        result = run_checker(
            "int f(int *p) { kfree(p); return *p; }", free_checker()
        )
        assert messages(result) == ["using p after free!"]

    def test_double_free(self):
        result = run_checker(
            "int f(int *p) { kfree(p); kfree(p); return 0; }", free_checker()
        )
        assert messages(result) == ["double free of p!"]

    def test_clean_function(self):
        result = run_checker(
            "int f(int *p) { *p = 1; kfree(p); return 0; }", free_checker()
        )
        assert messages(result) == []

    def test_free_then_branch_both_paths(self):
        result = run_checker(
            "int f(int *p, int c) { kfree(p); if (c) return *p; return 0; }",
            free_checker(),
        )
        assert messages(result) == ["using p after free!"]

    def test_error_on_one_path_only(self):
        result = run_checker(
            "int f(int *p, int c) { if (c) kfree(p); return *p; }",
            free_checker(),
        )
        assert messages(result) == ["using p after free!"]

    def test_no_transition_at_creation_statement(self):
        # §3.1: "this restriction prevents a variable that is freed for the
        # first time from triggering a double-free error at the same
        # program point."
        result = run_checker(
            "int f(int *p) { kfree(p); return 0; }", free_checker()
        )
        assert messages(result) == []

    def test_reinstantiation_after_stop(self):
        # §2.1: freeing again after stop re-creates the SM.
        code = (
            "int f(int *p) { kfree(p); kfree(p); kfree(p); return 0; }"
        )
        result = run_checker(code, free_checker())
        # double free at 2nd kfree; p stopped; 3rd kfree re-creates; path
        # ends with no further use: exactly one error.
        assert messages(result) == ["double free of p!"]

    def test_dereference_forms(self):
        code = "int f(int **p) { kfree(p); return **p; }"
        result = run_checker(code, free_checker())
        assert messages(result) == ["using p after free!"]


class TestKillsAndRedefinition:
    def test_assignment_kills_state(self):
        # Figure 2's "p = 0" kill.
        result = run_checker(
            "int f(int *p) { kfree(p); p = 0; return *p; }", free_checker()
        )
        assert messages(result) == []

    def test_component_redefinition_kills_expression(self):
        # §8: "an expression (e.g., a[i]) with attached state is
        # transitioned to the stop state when a component (e.g., i) is
        # redefined."
        result = run_checker(
            "int f(int **a, int i) { kfree(a[i]); i = i + 1; return *a[i]; }",
            free_checker(),
        )
        assert messages(result) == []

    def test_no_kill_without_redefinition(self):
        result = run_checker(
            "int f(int **a, int i) { kfree(a[i]); return *a[i]; }",
            free_checker(),
        )
        assert messages(result) == ["using a[i] after free!"]

    def test_increment_kills(self):
        result = run_checker(
            "int f(int **a, int i) { kfree(a[i]); i++; return *a[i]; }",
            free_checker(),
        )
        assert messages(result) == []

    def test_declaration_shadows(self):
        result = run_checker(
            "int f(int *p) { kfree(p); { int *p; p = fresh(); return *p; } }",
            free_checker(),
        )
        assert messages(result) == []

    def test_kills_can_be_disabled(self):
        options = AnalysisOptions(kills=False)
        result = run_checker(
            "int f(int *p) { kfree(p); p = 0; return *p; }",
            free_checker(),
            options=options,
        )
        assert messages(result) == ["using p after free!"]


class TestSynonyms:
    def test_assignment_creates_synonym(self):
        result = run_checker(
            "int f(int *p) { int *q; kfree(p); q = p; return *q; }",
            free_checker(),
        )
        assert messages(result) == ["using q after free!"]

    def test_kill_of_original_keeps_synonym(self):
        # the Figure 2 q = p; p = 0 sequence
        result = run_checker(
            "int f(int *p) { int *q; kfree(p); q = p; p = 0; return *q; }",
            free_checker(),
        )
        assert messages(result) == ["using q after free!"]

    def test_synonym_mirrors_stop(self):
        # after the double-free error on q, p's mirror is stopped too: a
        # later *p is not re-reported.
        code = (
            "int f(int *p) { int *q; kfree(p); q = p; kfree(q);"
            " return *p; }"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["double free of q!"]

    def test_synonyms_can_be_disabled(self):
        options = AnalysisOptions(synonyms=False)
        result = run_checker(
            "int f(int *p) { int *q; kfree(p); q = p; return *q; }",
            free_checker(),
            options=options,
        )
        assert messages(result) == []

    def test_synonym_chain_recorded(self):
        result = run_checker(
            "int f(int *p) { int *q, *r; kfree(p); q = p; r = q; return *r; }",
            free_checker(),
        )
        report = result.reports[0]
        assert report.synonym_chain == 2


class TestCaching:
    def diamond_code(self, n):
        body = ["int f(int *p, int n) {", "    kfree(p);"]
        for i in range(n):
            body.append("    if (n & %d) n = n + 1; else n = n - 1;" % (1 << i))
        body.append("    return n;")
        body.append("}")
        return "\n".join(body)

    def test_cache_bounds_work(self):
        cached = run_checker(self.diamond_code(10), free_checker())
        uncached = run_checker(
            self.diamond_code(10), free_checker(),
            options=AnalysisOptions(caching=False),
        )
        assert cached.stats["points_visited"] < 300
        assert uncached.stats["points_visited"] > 10000
        # same verdicts either way
        assert len(cached.reports) == len(uncached.reports) == 0

    def test_cache_hit_count(self):
        result = run_checker(self.diamond_code(6), free_checker())
        assert result.stats["cache_hits"] > 0

    def test_revisit_in_new_state_is_a_miss(self):
        # same block reached freed on one path, untracked on the other --
        # both must be explored.
        code = (
            "int f(int *p, int c) {\n"
            "    if (c)\n"
            "        kfree(p);\n"
            "    return *p;\n"
            "}\n"
        )
        result = run_checker(code, free_checker())
        assert messages(result) == ["using p after free!"]

    def test_loop_terminates(self):
        code = (
            "int f(int *p, int n) {\n"
            "    int i;\n"
            "    for (i = 0; i < n; i++) {\n"
            "        kfree(p);\n"
            "        p = make();\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, free_checker())
        assert result.stats["points_visited"] < 1000

    def test_independence_linear_scaling(self):
        # §5.2: work grows linearly, not exponentially, with the number of
        # tracked instances.
        def code(k):
            params = ", ".join("int *p%d" % i for i in range(k))
            frees = "\n".join("    kfree(p%d);" % i for i in range(k))
            return (
                "int f(%s, int n) {\n%s\n"
                "    if (n) n = n + 1; else n = n - 1;\n"
                "    if (n & 2) n = n + 2; else n = n - 2;\n"
                "    return n;\n}" % (params, frees)
            )

        points = []
        for k in (2, 4, 8, 16):
            result = run_checker(code(k), free_checker())
            points.append(result.stats["points_visited"])
        # doubling k should roughly double the work, not square it
        assert points[3] < points[1] * 8
        assert points[3] > points[1]


class TestPathSpecific:
    def test_trylock_true_false(self):
        code = (
            "int f(int *l) {\n"
            "    if (trylock(l)) {\n"
            "        unlock(l);\n"
            "        return 1;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == []

    def test_trylock_held_on_true_path(self):
        code = (
            "int f(int *l) {\n"
            "    if (trylock(l))\n"
            "        return 1;\n"  # forgot unlock
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == ["lock l never released!"]

    def test_negated_trylock(self):
        # if (!trylock(l)) return 0; -> lock IS held after the if
        code = (
            "int f(int *l) {\n"
            "    if (!trylock(l))\n"
            "        return 0;\n"
            "    unlock(l);\n"
            "    return 1;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == []

    def test_trylock_compared_to_zero(self):
        code = (
            "int f(int *l) {\n"
            "    if (trylock(l) == 0)\n"
            "        return 0;\n"
            "    unlock(l);\n"
            "    return 1;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == []

    def test_split_without_branch_forks_path(self):
        # result discarded: both outcomes must be explored
        code = (
            "int f(int *l) {\n"
            "    trylock(l);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, lock_checker())
        # the true outcome holds the lock at path end
        assert messages(result) == ["lock l never released!"]


class TestEndOfPath:
    def test_root_exit_triggers(self):
        result = run_checker(
            "int f(int *l) { lock(l); return 0; }", lock_checker()
        )
        assert messages(result) == ["lock l never released!"]

    def test_local_leaves_scope(self):
        code = (
            "int helper(void) { int lk; lock(&lk); return 0; }\n"
            "int root(void) { helper(); return 0; }\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == ["lock &lk never released!"]

    def test_param_lock_propagates_to_caller(self):
        code = (
            "int helper(int *l) { lock(l); return 0; }\n"
            "int root(int *l) { helper(l); unlock(l); return 0; }\n"
        )
        result = run_checker(code, lock_checker())
        assert messages(result) == []


class TestStopPath:
    def test_stop_path_suppresses_rest(self):
        ext = Extension("killer")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ kfree(v) }", to="v.freed")
        ext.transition("v.freed", "{ panic() }", action=lambda ctx: ctx.stop_path())
        ext.transition(
            "v.freed", "{ *v }", to="v.stop",
            action=lambda ctx: ctx.err("use after free"),
        )
        code = "int f(int *p) { kfree(p); panic(); return *p; }"
        result = run_checker(code, ext)
        assert messages(result) == []

    def test_other_paths_survive(self):
        ext = Extension("killer")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ kfree(v) }", to="v.freed")
        ext.transition("v.freed", "{ panic() }", action=lambda ctx: ctx.stop_path())
        ext.transition(
            "v.freed", "{ *v }", to="v.stop",
            action=lambda ctx: ctx.err("use after free"),
        )
        code = (
            "int f(int *p, int c) { kfree(p);"
            " if (c) { panic(); }"
            " return *p; }"
        )
        result = run_checker(code, ext)
        assert messages(result) == ["use after free"]
