"""Structured-report tests: the model round-trip, stable hashes under
edits, run history, and ``xgcc --diff``.

The contract (docs/REPORTS.md): structured reports are the product and
text is one renderer, so ``--report-json`` must round-trip losslessly
through ``render_reports`` back to the classic ranked text; report
hashes are *structural* identities, so pure line drift (inserted
declarations), blank-line churn, and edits to unrelated functions keep
every hash fixed, while an actual fix flips exactly the fixed report to
``--resolved``; and every driver path -- serial, ``--jobs``, warm
incremental, the daemon -- assigns the same hashes to the same report
text, byte-identically.
"""

import contextlib
import functools
import json
import os
import re
import shutil
import tempfile
import threading

import pytest

from repro.codegen.project_gen import apply_function_edits, generate_project
from repro.driver.cli import _build_extensions, main
from repro.driver.daemon import DaemonClient, XgccDaemon, wait_for_socket
from repro.driver.dump import load_report_json, render_reports
from repro.driver.session import IncrementalSession, session_signature
from repro.driver.store import LocalStore
from repro.engine.analysis import AnalysisOptions
from repro.reports.hashing import assign_report_hashes, report_base_key
from repro.reports.history import RunHistory, RunHistoryError
from repro.reports.model import Report

cli_checkers = functools.partial(_build_extensions, ("free", "lock"), ())

CHECKER_ARGS = ["--checker", "free", "--checker", "lock"]

#: Declaration lines prepended to a module to drift every line below
#: them (blank lines do not shift: the preprocessor strips them).
PAD = "int pad_drift_1;\nint pad_drift_2;\n"

RUN_ID_RE = re.compile(r"recorded run (r[0-9a-f]+)")


def write_tree(dirpath, files):
    for name, text in files.items():
        with open(os.path.join(str(dirpath), name), "w") as handle:
            handle.write(text)


def c_paths(dirpath):
    return sorted(
        os.path.join(str(dirpath), name)
        for name in os.listdir(str(dirpath))
        if name.endswith(".c")
    )


def run_cli(src, capsys, *extra):
    """``(exit_code, stdout, stderr)`` of one CLI run over ``src``."""
    code = main(CHECKER_ARGS + ["-I", str(src)] + list(extra)
                + c_paths(src))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def report_json(src, capsys, *extra):
    """The ``--report-json`` document list for one run (the ranked text
    follows the document on stdout with ``--report-json -``)."""
    __, out, __ = run_cli(src, capsys, "--report-json", "-", *extra)
    docs, __ = json.JSONDecoder().raw_decode(out[out.index("["):])
    return docs


def recorded_run_id(err):
    match = RUN_ID_RE.search(err)
    assert match, "no run id on stderr: %r" % err
    return match.group(1)


def hashes_of(docs):
    return sorted(doc["hash"] for doc in docs)


@pytest.fixture
def gen_tree(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    gen = generate_project(seed=7, n_modules=2, functions_per_module=4,
                           bug_rate=0.5)
    write_tree(src, gen.files)
    return src, gen


#: A handcrafted two-bug module: ``target_bug`` is the one the "real
#: fix" tests repair, ``stable_bug`` the control whose hash must hold.
FIX_TREE = {
    "mod.c": (
        "int stable_bug(int *a) { kfree(a); return *a; }\n"
        "\n"
        "int target_bug(int *b) { kfree(b); return *b; }\n"
    ),
}

FIXED_TREE = {
    "mod.c": FIX_TREE["mod.c"].replace("return *b;", "return 0;"),
}


class TestModelRoundTrip:
    def test_report_json_round_trips_to_identical_text(
        self, gen_tree, capsys
    ):
        # The satellite contract: load(--report-json) -> render ==
        # the classic ranked text, byte for byte.
        src, __ = gen_tree
        __, baseline, __ = run_cli(src, capsys)
        docs = report_json(src, capsys)
        assert docs, "generated tree produced no reports"
        capsys.readouterr()
        assert render_reports(load_report_json(json.dumps(docs))) == baseline

    def test_trace_round_trips_through_the_model(self, gen_tree, capsys):
        src, __ = gen_tree
        __, baseline, __ = run_cli(src, capsys, "--trace")
        docs = report_json(src, capsys)
        loaded = load_report_json(json.dumps(docs))
        assert render_reports(loaded, trace=True) == baseline

    def test_to_dict_from_dict_is_lossless(self, gen_tree, capsys):
        src, __ = gen_tree
        for doc in report_json(src, capsys):
            report = Report.from_dict(doc)
            assert report.to_dict() == doc
            assert Report.from_dict(report.to_dict()).format() == \
                report.format()

    def test_annotations_never_change_rendered_text(self, gen_tree, capsys):
        src, __ = gen_tree
        docs = report_json(src, capsys)
        for doc in docs:
            report = Report.from_dict(doc)
            bare = report.render_text(trace=True)
            report.annotations["rank"] = 99
            report.annotations["triage"] = {"verdict": "confirmed"}
            assert report.render_text(trace=True) == bare

    def test_rank_annotations_present_in_json(self, gen_tree, capsys):
        src, __ = gen_tree
        docs = report_json(src, capsys)
        ranks = [doc["annotations"]["rank"] for doc in docs]
        assert ranks == list(range(1, len(docs) + 1))

    def test_every_report_carries_a_hash(self, gen_tree, capsys):
        src, __ = gen_tree
        docs = report_json(src, capsys)
        for doc in docs:
            assert re.fullmatch(r"[0-9a-f]{40}", doc["hash"])

    def test_duplicate_base_keys_get_distinct_hashes(self):
        twin_a = Report("free", "using p after free!", function="f",
                        variable="p")
        twin_b = Report("free", "using p after free!", function="f",
                        variable="p")
        assert report_base_key(twin_a) == report_base_key(twin_b)
        assign_report_hashes([twin_a, twin_b])
        assert twin_a.report_hash != twin_b.report_hash
        # Re-assignment is idempotent.
        first = (twin_a.report_hash, twin_b.report_hash)
        assign_report_hashes([twin_a, twin_b])
        assert (twin_a.report_hash, twin_b.report_hash) == first


class TestHashStability:
    def test_line_drift_keeps_hashes_fixed(self, gen_tree, capsys):
        src, gen = gen_tree
        before = report_json(src, capsys)
        assert before
        for name in gen.files:
            if name.endswith(".c"):
                path = src / name
                path.write_text(PAD + path.read_text())
        after = report_json(src, capsys)
        # The drift is real: report lines moved ...
        assert [d["location"]["line"] for d in after] != \
            [d["location"]["line"] for d in before]
        # ... but the identities did not.
        assert hashes_of(after) == hashes_of(before)

    def test_blank_line_churn_keeps_hashes_fixed(self, gen_tree, capsys):
        src, gen = gen_tree
        before = report_json(src, capsys)
        for name in gen.files:
            if name.endswith(".c"):
                path = src / name
                path.write_text("\n\n\n" + path.read_text())
        assert hashes_of(report_json(src, capsys)) == hashes_of(before)

    def test_unrelated_function_edits_keep_hashes_fixed(
        self, tmp_path, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=7, n_modules=2, functions_per_module=4,
                               bug_rate=0.5)
        write_tree(src, gen.files)
        before = report_json(src, capsys)
        involved = {doc["function"] for doc in before}
        # A seeded in-place literal bump in functions that report
        # nothing: a token-stream change that must not move any hash.
        for seed in range(32):
            edited, edits = apply_function_edits(gen, k=1, seed=seed)
            if all(edit.function not in involved for edit in edits):
                break
        else:
            pytest.skip("no edit site outside the reporting functions")
        write_tree(src, edited.files)
        assert hashes_of(report_json(src, capsys)) == hashes_of(before)

    def test_real_fix_changes_exactly_one_hash(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, FIX_TREE)
        before = report_json(src, capsys)
        assert len(before) == 2
        write_tree(src, FIXED_TREE)
        after = report_json(src, capsys)
        assert len(after) == 1
        assert after[0]["function"] == "stable_bug"
        assert after[0]["hash"] in hashes_of(before)


class TestRunHistory:
    def seed_runs(self, tmp_path):
        backend = LocalStore(str(tmp_path / "store"))
        history = RunHistory(backend)
        first = [Report("free", "using a after free!", function="f",
                        variable="a"),
                 Report("free", "using b after free!", function="g",
                        variable="b")]
        second = [Report("free", "using b after free!", function="g",
                         variable="b"),
                  Report("lock", "double lock!", function="h",
                         variable="l")]
        id1 = history.record_run(assign_report_hashes(first),
                                 meta={"tag": "base"})
        id2 = history.record_run(assign_report_hashes(second))
        return history, id1, id2

    def test_record_list_load(self, tmp_path):
        history, id1, id2 = self.seed_runs(tmp_path)
        assert history.run_ids() == [id1, id2]
        listed = history.list_runs()
        assert [row["run_id"] for row in listed] == [id1, id2]
        assert listed[0]["report_count"] == 2
        assert listed[0]["meta"] == {"tag": "base"}
        assert len(history.load_reports(id1)) == 2

    def test_resolve_latest_and_prefix(self, tmp_path):
        history, id1, id2 = self.seed_runs(tmp_path)
        assert history.resolve_run_id("latest") == id2
        assert history.resolve_run_id("HEAD") == id2
        assert history.resolve_run_id(id1[:-1]) == id1
        with pytest.raises(RunHistoryError):
            history.resolve_run_id("r")  # ambiguous
        with pytest.raises(RunHistoryError):
            history.resolve_run_id("zzz")

    def test_diff_buckets(self, tmp_path):
        history, id1, id2 = self.seed_runs(tmp_path)
        diff = history.diff(id1, id2)
        assert [d["message"] for d in diff["new"]] == ["double lock!"]
        assert [d["message"] for d in diff["resolved"]] == \
            ["using a after free!"]
        assert [d["message"] for d in diff["unresolved"]] == \
            ["using b after free!"]
        assert diff["suppressed"] == []

    def test_prune_keeps_newest(self, tmp_path):
        history, id1, id2 = self.seed_runs(tmp_path)
        assert history.prune(keep=1) == 1
        assert history.run_ids() == [id2]

    def test_undecodable_run_degrades(self, tmp_path):
        history, id1, id2 = self.seed_runs(tmp_path)
        history.backend.put_many("run", {id1: b"not json"})
        with pytest.raises(RunHistoryError):
            history.load_run(id1)
        # Listing skips the broken frame instead of failing.
        assert [row["run_id"] for row in history.list_runs()] == [id2]


class TestDiffCLI:
    def record(self, src, capsys, cache):
        code, out, err = run_cli(src, capsys, "--cache-dir", cache,
                                 "--record-run")
        return recorded_run_id(err), out

    def test_line_drift_diffs_empty(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        cache = str(tmp_path / "cache")
        write_tree(src, FIX_TREE)
        base, __ = self.record(src, capsys, cache)
        (src / "mod.c").write_text(PAD + (src / "mod.c").read_text())
        head, __ = self.record(src, capsys, cache)
        code, out, __ = run_cli(src, capsys, "--diff", base, head,
                                "--cache-dir", cache)
        assert code == 0
        assert "== new (0) ==" in out
        assert "== resolved (0) ==" in out
        assert "== unresolved (2) ==" in out

    def test_real_fix_is_exactly_resolved(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        cache = str(tmp_path / "cache")
        write_tree(src, FIX_TREE)
        base, __ = self.record(src, capsys, cache)
        write_tree(src, FIXED_TREE)
        head, __ = self.record(src, capsys, cache)

        code, out, __ = run_cli(src, capsys, "--diff", base, head,
                                "--resolved", "--cache-dir", cache)
        assert code == 0
        # Bare output with exactly one bucket selected: the fixed
        # report's classic line, nothing else.
        assert out.count("\n") == 1
        assert "target_bug" in out

        code, out, __ = run_cli(src, capsys, "--diff", base, head,
                                "--new", "--cache-dir", cache)
        assert (code, out) == (0, "")

        # The reverse direction: the bug "appears", exit code 1.
        code, out, __ = run_cli(src, capsys, "--diff", head, base,
                                "--new", "--cache-dir", cache)
        assert code == 1
        assert "target_bug" in out

    def test_diff_latest_and_json(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        cache = str(tmp_path / "cache")
        write_tree(src, FIX_TREE)
        base, __ = self.record(src, capsys, cache)
        write_tree(src, FIXED_TREE)
        self.record(src, capsys, cache)
        code, out, __ = run_cli(src, capsys, "--diff", base, "latest",
                                "--cache-dir", cache, "--format", "json")
        doc = json.loads(out)
        assert code == 0
        assert [d["function"] for d in doc["resolved"]] == ["target_bug"]
        assert doc["new"] == []
        assert len(doc["unresolved"]) == 1

    def test_diff_unknown_run_is_exit_2(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        os.makedirs(cache)
        code = main(["--diff", "rdeadbeef", "latest",
                     "--cache-dir", cache])
        assert code == 2
        assert "xgcc:" in capsys.readouterr().err


@contextlib.contextmanager
def running_daemon(src_dir, cache_dir, sock_path):
    options = AnalysisOptions()
    signature = session_signature(
        checker_names=["free", "lock"], options=options
    )
    session = IncrementalSession(str(cache_dir), signature,
                                 pin_warm_state=True)
    daemon = XgccDaemon(
        watch_roots=[str(src_dir)], extension_factory=cli_checkers,
        session=session, socket_path=str(sock_path),
        include_paths=[str(src_dir)], cache_dir=str(cache_dir),
        options=options, poll_interval=30.0,
    )
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    assert wait_for_socket(str(sock_path), timeout=60.0)
    try:
        yield daemon
    finally:
        try:
            with DaemonClient(str(sock_path)) as client:
                client.request("shutdown")
        except Exception:
            daemon.stop()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "daemon thread wedged"


class TestDifferentialParity:
    """Every driver path renders the same bytes and assigns the same
    hashes: text is one renderer, the hash is one identity."""

    def test_serial_jobs_warm_daemon_agree(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        gen = generate_project(seed=11, n_modules=2,
                               functions_per_module=4, bug_rate=0.5)
        write_tree(src, gen.files)

        __, baseline, __ = run_cli(src, capsys)
        base_docs = report_json(src, capsys)
        assert base_docs

        __, jobs_out, __ = run_cli(src, capsys, "--jobs", "4")
        assert jobs_out == baseline
        assert hashes_of(report_json(src, capsys, "--jobs", "4")) == \
            hashes_of(base_docs)

        cache = str(tmp_path / "cache")
        __, cold_inc, __ = run_cli(src, capsys, "--incremental",
                                   "--cache-dir", cache)
        assert cold_inc == baseline
        __, warm_inc, __ = run_cli(src, capsys, "--incremental",
                                   "--cache-dir", cache)
        assert warm_inc == baseline
        warm_docs = report_json(src, capsys, "--incremental",
                                "--cache-dir", cache)
        assert hashes_of(warm_docs) == hashes_of(base_docs)

        sock_dir = tempfile.mkdtemp(prefix="xgccd-")
        try:
            sock = os.path.join(sock_dir, "d.sock")
            with running_daemon(src, tmp_path / "dcache", sock):
                with DaemonClient(sock) as client:
                    response = client.request("analyze")
            assert response["reports"] == baseline
        finally:
            shutil.rmtree(sock_dir, ignore_errors=True)

    def test_daemon_records_runs_diffable_offline(self, tmp_path, capsys):
        # The daemon persists every fresh analysis into the same run
        # history offline --diff reads.
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, FIX_TREE)
        cache = tmp_path / "dcache"
        sock_dir = tempfile.mkdtemp(prefix="xgccd-")
        try:
            sock = os.path.join(sock_dir, "d.sock")
            with running_daemon(src, cache, sock):
                with DaemonClient(sock) as client:
                    first = client.request("analyze")
                    write_tree(src, FIXED_TREE)
                    client.request("notify", paths=[str(src / "mod.c")])
                    second = client.request("analyze")
            assert first["run_id"] and second["run_id"]
            assert first["run_id"] != second["run_id"]
            code, out, __ = run_cli(
                src, capsys, "--diff", first["run_id"], second["run_id"],
                "--resolved", "--cache-dir", str(cache),
            )
            assert code == 0
            assert "target_bug" in out
            assert out.count("\n") == 1
        finally:
            shutil.rmtree(sock_dir, ignore_errors=True)
