"""The persistent, content-addressed AST cache behind incremental pass 1.

The paper's pass 1 "compiles each file in isolation, emitting ASTs" (§6);
those emitted files are re-runnable artifacts.  We key each one by what
actually determines its contents:

    key = SHA-256( parser version
                 || filename
                 || include-path configuration
                 || -D define configuration
                 || preprocessed token stream )

Hashing the *preprocessed* tokens means edits to any transitively included
header invalidate every file that saw it, while whitespace/comment-only
edits still hit.  A warm cache turns pass 1 into pure ``load_emitted``
work: zero re-parses.

Emitted payloads are pickles of a small dict wrapping the translation
unit with its original source size (so ``expansion_ratio`` and
``total_source_bytes`` reporting survive cache-hit loads); bare-unit
pickles from older emit dirs still load.
"""

import hashlib
import os
import pickle

#: Bump when parser/astnodes change shape: old cache entries stop matching.
PARSER_VERSION = "1"

#: Payload format marker for emitted .ast files.
AST_FORMAT_VERSION = 1


def cache_key(filename, tokens, include_paths=(), defines=None):
    """The content-addressed key for one preprocessed file."""
    digest = hashlib.sha256()
    digest.update(PARSER_VERSION.encode())
    digest.update(b"\x00")
    digest.update(str(filename).encode())
    digest.update(b"\x00")
    for path in include_paths:
        digest.update(str(path).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for name, value in sorted((defines or {}).items()):
        digest.update(("%s=%s" % (name, value)).encode())
        digest.update(b"\x1d")
    digest.update(b"\x00")
    for token in tokens:
        digest.update(token.kind.name.encode())
        digest.update(b"\x1f")
        digest.update(token.value.encode())
        digest.update(b"\x1e")
    return digest.hexdigest()


def pack_unit(unit, source_bytes):
    """Serialize a translation unit into the emitted .ast payload."""
    return pickle.dumps(
        {
            "format": AST_FORMAT_VERSION,
            "parser_version": PARSER_VERSION,
            "filename": unit.filename,
            "source_bytes": source_bytes,
            "unit": unit,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def unpack(data):
    """``(unit, source_bytes)`` from an emitted payload.

    ``source_bytes`` is 0 for legacy bare-unit pickles.
    """
    payload = pickle.loads(data)
    if isinstance(payload, dict) and "unit" in payload:
        return payload["unit"], int(payload.get("source_bytes") or 0)
    return payload, 0


class AstCache:
    """Content-addressed store of emitted ASTs under one directory."""

    def __init__(self, root):
        self.root = root

    def path_for(self, key):
        return os.path.join(self.root, key[:2], key + ".ast")

    def lookup(self, key):
        """The on-disk path for ``key``, or None on a miss."""
        path = self.path_for(key)
        return path if os.path.exists(path) else None

    def load(self, key):
        """``(unit, source_bytes, emitted_bytes)`` for a cached key."""
        path = self.path_for(key)
        with open(path, "rb") as handle:
            data = handle.read()
        unit, source_bytes = unpack(data)
        return unit, source_bytes, len(data)

    def store(self, key, data):
        """Atomically write a payload; safe under concurrent writers."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        return path
