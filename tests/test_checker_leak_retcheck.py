"""Tests for the leak (ownership) checker and the statistical
return-value checker."""

from conftest import messages, run_checker

from repro.cfront.parser import parse
from repro.cfg import CallGraph
from repro.checkers.leak import leak_checker
from repro.checkers.retcheck import (
    collect_call_uses,
    infer_must_check_rules,
    report_deviant_sites,
)


class TestLeakChecker:
    def test_leak_on_error_path(self):
        code = (
            "int f(int n, int err) {\n"
            "    char *b = kmalloc(n);\n"
            "    if (err)\n"
            "        return -1;\n"  # leaked!
            "    kfree(b);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, leak_checker())
        assert messages(result) == ["b allocated with kmalloc is leaked on this path"]

    def test_freed_is_fine(self):
        code = "int f(int n) { char *b = kmalloc(n); kfree(b); return 0; }"
        assert messages(run_checker(code, leak_checker())) == []

    def test_returned_transfers_ownership(self):
        code = "char *f(int n) { char *b = kmalloc(n); return b; }"
        assert messages(run_checker(code, leak_checker())) == []

    def test_published_via_registration(self):
        code = (
            "int f(int n) { char *b = kmalloc(n); register_buf(b); return 0; }"
        )
        assert messages(run_checker(code, leak_checker())) == []

    def test_stored_through_pointer(self):
        code = (
            "struct holder { char *buf; };\n"
            "int f(struct holder *h, int n) {\n"
            "    char *b = kmalloc(n);\n"
            "    h->buf = b;\n"
            "    return 0;\n"
            "}\n"
        )
        assert messages(run_checker(code, leak_checker())) == []

    def test_plain_leak(self):
        code = "int f(int n) { char *b = kmalloc(n); return 0; }"
        result = run_checker(code, leak_checker())
        assert len(result.reports) == 1
        assert result.reports[0].rule_id == "kmalloc"

    def test_example_counting(self):
        code = (
            "int a(int n) { char *b = kmalloc(n); kfree(b); return 0; }\n"
            "char *c(int n) { char *b = kmalloc(n); return b; }\n"
            "int d(int n) { char *b = kmalloc(n); return 0; }\n"
        )
        result = run_checker(code, leak_checker())
        examples, violations = result.log.rule_counts("kmalloc")
        assert examples == 2 and violations == 1


class TestReturnCheckInference:
    CODE = (
        "int open_dev(int n);\n"
        "void log_msg(int n);\n"
        "int user_a(int n) { int fd = open_dev(n); log_msg(1); return fd; }\n"
        "int user_b(int n) { if (open_dev(n) < 0) return -1; log_msg(2); return 0; }\n"
        "int user_c(int n) { return open_dev(n); }\n"
        "int user_d(int n) { int fd; fd = open_dev(n); log_msg(3); return fd; }\n"
        "int deviant(int n) { open_dev(n); log_msg(4); return 0; }\n"
    )

    def callgraph(self):
        return CallGraph.from_units([parse(self.CODE, "ret.c")])

    def test_call_use_classification(self):
        uses = collect_call_uses(self.callgraph())
        open_uses = [u for u in uses if u.callee == "open_dev"]
        assert sum(1 for u in open_uses if u.checked) == 4
        assert sum(1 for u in open_uses if not u.checked) == 1
        log_uses = [u for u in uses if u.callee == "log_msg"]
        assert all(not u.checked for u in log_uses)

    def test_rule_inference(self):
        rules = infer_must_check_rules(self.callgraph())
        by_name = {r.callee: r for r in rules}
        assert "open_dev" in by_name
        assert by_name["open_dev"].checked == 4
        assert by_name["open_dev"].ignored == 1
        # log_msg is never checked: no must-check rule survives min_checked
        assert "log_msg" not in by_name

    def test_deviant_reporting(self):
        reports = report_deviant_sites(self.callgraph())
        assert len(reports) == 1
        assert reports[0].function == "deviant"
        assert reports[0].rule_id == "open_dev"

    def test_min_z_threshold(self):
        # with a huge threshold nothing is confident enough
        assert report_deviant_sites(self.callgraph(), min_z=10.0) == []

    def test_comma_operator_discards_left(self):
        code = "int f(int n) { int x = (g(n), h(n)); return x; }"
        uses = collect_call_uses(CallGraph.from_units([parse(code)]))
        by_callee = {u.callee: u.checked for u in uses}
        assert by_callee["g"] is False
        assert by_callee["h"] is True
