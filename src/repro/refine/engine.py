"""The refinement evaluator: anchor, enumerate, evaluate, classify.

For one local :class:`repro.reports.model.Report` the pipeline is:

1. **Anchor** -- the report's why-trace (§3.2) plus its error location
   become an ordered list of source lines the candidate path must pass
   through, in order.
2. **Slice** -- :func:`repro.refine.slicing.relevant_variables` bounds
   the variables the evaluator tracks.
3. **Enumerate** -- a deterministic bounded DFS over the function's
   CFG.  Loops are covered by three *path families* per loop head
   (a block with ``havoc_vars``): the concrete zero-iteration path,
   concrete non-revisiting paths (``break``), and one *widened*
   family -- on the second arrival at the head the loop-assigned
   variables are havocked (over-approximating any number of earlier
   iterations) and the body edge is forced once more, then the third
   arrival forces the exit edge, so the final iteration is evaluated
   concretely.  Every real execution's observable post-loop state is
   covered by some family, which is what makes ``infeasible`` claims
   sound.  Shapes outside the scheme (do-while revisits, a fourth
   arrival from nested loops, goto cycles) mark the enumeration
   non-exhaustive and the verdict degrades to ``unknown``.
4. **Evaluate** -- each path runs through a
   :class:`repro.refine.domain.RefineState`.  A contradictory state
   keeps walking *syntactically* (constraint updates stop) so the
   evaluator can still tell "this trace is realizable in the CFG but
   always contradictory" (-> ``infeasible``) apart from "the trace
   never re-anchored at all" (-> ``unknown``).

Verdicts are cached in the store's summary tier under
``refine<version><fingerprint><report-hash>`` keys -- the function's
Merkle fingerprint is part of the key because report hashes
deliberately exclude function bodies, so an edit that preserves the
hash must still invalidate the verdict.  Only ``confirmed`` and
``infeasible`` are cached (``unknown`` re-evaluates, it may have been
a budget artifact).  Fault sites: ``refine.budget`` (forces the
per-report budget degradation) and ``refine.error`` (forces an
evaluation error); both degrade the verdict to ``unknown``.
"""

import json
import time

from repro import faults
from repro.cfg.blocks import ReturnMarker
from repro.cfg.builder import build_cfg
from repro.cfront import astnodes as ast
from repro.refine.domain import RefineState
from repro.refine.slicing import relevant_variables

#: Bump to invalidate every cached verdict (domain or enumeration change).
REFINE_VERSION = 1

#: Verdicts ride in the store's summary tier next to function summaries.
CACHE_TIER = "sum"

VERDICT_CONFIRMED = "confirmed"
VERDICT_INFEASIBLE = "infeasible"
VERDICT_UNKNOWN = "unknown"

#: Consult the wall clock every 64 steps, not every step.
_TIME_CHECK_MASK = 63


class RefineOptions:
    """Budgets and knobs for one refinement pass.

    The step budget is the *primary* bound -- it is deterministic, so
    verdicts stay byte-identical across machines and job counts.  The
    wall-clock budget is a safety net: blowing it degrades that
    report's verdict to ``unknown`` (counted in ``refine_budget_hits``)
    and the verdict is not cached.
    """

    def __init__(self, max_paths=256, max_steps=20000,
                 max_block_visits=8, max_seconds_per_report=5.0,
                 cache=True):
        self.max_paths = max_paths
        self.max_steps = max_steps
        self.max_block_visits = max_block_visits
        self.max_seconds_per_report = max_seconds_per_report
        self.cache = cache


class _Budget:
    """Per-report enumeration budget; ``blown`` is the degradation
    reason once any bound trips."""

    def __init__(self, options):
        self.options = options
        self.steps = 0
        self.paths = 0
        cap = options.max_seconds_per_report
        self.deadline = None if cap is None else time.monotonic() + cap
        self.blown = None

    def step(self):
        self.steps += 1
        if self.steps > self.options.max_steps:
            self.blown = "budget-steps"
        elif (
            self.deadline is not None
            and self.steps & _TIME_CHECK_MASK == 0
            and time.monotonic() > self.deadline
        ):
            self.blown = "budget-time"
        return self.blown is None

    def path(self):
        self.paths += 1
        if self.paths > self.options.max_paths:
            self.blown = "budget-paths"
        return self.blown is None


def _anchor_lines(report):
    """The ordered source lines the candidate path must pass through:
    the report's same-file trace steps plus its error location,
    consecutive duplicates collapsed."""
    lines = []
    filename = report.location.filename
    for __, location in report.trace:
        if location is not None and location.filename == filename:
            lines.append(location.line)
    lines.append(report.location.line)
    collapsed = []
    for line in lines:
        if not collapsed or collapsed[-1] != line:
            collapsed.append(line)
    return collapsed


def _consume_anchors(anchors, index, line):
    while index < len(anchors) and anchors[index] == line:
        index += 1
    return index


def _apply_items(block, state, anchors, anchor_index, contradicted,
                 local_names):
    """Run one block's statements through ``state``; returns the
    advanced anchor index.  A contradicted path keeps consuming anchors
    (the walk stays syntactic) but stops updating constraints."""
    for item in block.items:
        location = getattr(item, "location", None)
        if location is not None:
            anchor_index = _consume_anchors(anchors, anchor_index,
                                            location.line)
        if contradicted:
            continue
        if isinstance(item, ast.VarDecl):
            state.declare(item.name)
            continue
        if isinstance(item, ReturnMarker):
            continue
        for node in ast.execution_order(item):
            if isinstance(node, ast.Assign):
                state.assign_node(node)
            elif isinstance(node, ast.Unary) and node.op in ("++", "--"):
                state.incdec_node(node)
            elif isinstance(node, ast.Call):
                state.call_effects(node, local_names)
    return anchor_index


class _Enumeration:
    """One report's bounded DFS over the function CFG."""

    def __init__(self, cfg, anchors, relevant, options, budget):
        self.cfg = cfg
        self.anchors = anchors
        self.options = options
        self.budget = budget
        self.local_names = cfg.local_names()
        self.relevant = relevant
        self.witness = False
        self.realizable = 0
        self.non_exhaustive = None

    def run(self):
        stack = [(self.cfg.entry, RefineState(self.relevant), {}, 0, False)]
        while stack and not self.witness:
            block, state, visits, anchor_index, contradicted = stack.pop()
            if not self.budget.step():
                return
            visits = dict(visits)
            count = visits.get(block.index, 0) + 1
            visits[block.index] = count
            is_head = bool(block.havoc_vars)
            if is_head:
                if block.branch_cond is None or not self._has_branch(block):
                    if count >= 2:
                        # do-while / goto revisit without a guarded head
                        self.non_exhaustive = "loop-structure"
                        continue
                elif count == 2:
                    if not contradicted:
                        state.havoc(block.havoc_vars)
                elif count >= 4:
                    # nested re-entry beyond the widened family
                    self.non_exhaustive = "loop-structure"
                    continue
            elif count > self.options.max_block_visits:
                self.non_exhaustive = "revisit-cap"
                continue
            anchor_index = _apply_items(
                block, state, self.anchors, anchor_index, contradicted,
                self.local_names,
            )
            if not contradicted and state.infeasible:
                contradicted = True
            anchored = anchor_index >= len(self.anchors)
            if contradicted and anchored:
                self.realizable += 1
                continue
            if block.is_exit or not block.edges:
                if not self.budget.path():
                    return
                if anchored and not contradicted:
                    self.witness = True
                continue
            self._push_successors(stack, block, state, visits, anchor_index,
                                  contradicted, count, is_head)

    def _has_branch(self, block):
        labels = {e.label for e in block.edges}
        return True in labels and False in labels

    def _push_successors(self, stack, block, state, visits, anchor_index,
                         contradicted, count, is_head):
        """Push successor frames in deterministic (source-edge) order."""
        if block.branch_cond is not None and self._has_branch(block):
            forced = None
            if is_head and count == 2:
                forced = True
            elif is_head and count == 3:
                forced = False
            edges = [
                e for e in block.edges
                if e.label in (True, False)
                and (forced is None or e.label is forced)
            ]
            branches = []
            for edge in edges:
                new_state = state.copy()
                new_contradicted = contradicted
                if not contradicted:
                    new_state.assume(block.branch_cond, edge.label)
                    if new_state.infeasible:
                        new_contradicted = True
                branches.append(
                    (edge.target, new_state, visits, anchor_index,
                     new_contradicted)
                )
            stack.extend(reversed(branches))
            return
        if block.switch_cond is not None:
            case_values = [
                e.label[1] for e in block.edges
                if isinstance(e.label, tuple) and isinstance(e.label[1], int)
            ]
            branches = []
            for edge in block.edges:
                new_state = state.copy()
                new_contradicted = contradicted
                if not contradicted:
                    if isinstance(edge.label, tuple) and \
                            isinstance(edge.label[1], int):
                        new_state.assume(
                            ast.Binary("==", block.switch_cond,
                                       ast.IntLit(edge.label[1])),
                            True,
                        )
                    elif edge.label == "default":
                        for value in case_values:
                            new_state.assume(
                                ast.Binary("==", block.switch_cond,
                                           ast.IntLit(value)),
                                False,
                            )
                    if new_state.infeasible:
                        new_contradicted = True
                branches.append(
                    (edge.target, new_state, visits, anchor_index,
                     new_contradicted)
                )
            stack.extend(reversed(branches))
            return
        branches = [
            (edge.target, state.copy(), visits, anchor_index, contradicted)
            for edge in block.edges
        ]
        stack.extend(reversed(branches))


def classify_report(report, callgraph, options=None):
    """One report's feasibility verdict: ``{"verdict", "reason"}``.

    A pure function of the report and its function's body -- no
    caching, no stats; :func:`refine_reports` layers those on top.
    """
    options = options or RefineOptions()
    if not report.is_local:
        return {"verdict": VERDICT_UNKNOWN, "reason": "interprocedural"}
    decl = callgraph.functions.get(report.function)
    if decl is None or not getattr(decl, "is_definition", False):
        return {"verdict": VERDICT_UNKNOWN, "reason": "unknown-function"}
    spec = faults.fires("refine.budget", key=report.function)
    if spec is not None:
        return {"verdict": VERDICT_UNKNOWN, "reason": "budget-injected"}
    try:
        spec = faults.fires("refine.error", key=report.function)
        if spec is not None:
            raise RuntimeError("injected refine fault")
        cfg = build_cfg(decl)
        anchors = _anchor_lines(report)
        relevant = relevant_variables(cfg, anchors, report.variable)
        budget = _Budget(options)
        enum = _Enumeration(cfg, anchors, relevant, options, budget)
        enum.run()
    except RecursionError:
        return {"verdict": VERDICT_UNKNOWN, "reason": "error"}
    except Exception:
        return {"verdict": VERDICT_UNKNOWN, "reason": "error"}
    if enum.witness:
        return {"verdict": VERDICT_CONFIRMED, "reason": "witness"}
    if budget.blown is not None:
        return {"verdict": VERDICT_UNKNOWN, "reason": budget.blown}
    if enum.non_exhaustive is not None:
        return {"verdict": VERDICT_UNKNOWN, "reason": enum.non_exhaustive}
    if enum.realizable:
        return {
            "verdict": VERDICT_INFEASIBLE,
            "reason": "all-paths-contradictory",
        }
    return {"verdict": VERDICT_UNKNOWN, "reason": "trace-not-realized"}


def _cache_key(report, fingerprints):
    """Store key for one report's verdict, or None if uncacheable.

    The key binds the function's Merkle fingerprint (its own tokens
    plus the transitive callee cone) as well as the stable report hash:
    report hashes deliberately exclude function bodies, so an edit that
    preserves the hash -- flipping a branch condition, say -- must
    still invalidate the cached verdict.
    """
    if report.report_hash is None:
        return None
    fingerprint = (fingerprints or {}).get(report.function)
    if fingerprint is None:
        return None
    return "refine%d%s%s" % (REFINE_VERSION, fingerprint, report.report_hash)


def _load_cached(backend, keys):
    """``{key: verdict_doc}`` for every cached, version-matched key."""
    if backend is None or not keys:
        return {}
    try:
        frames = backend.get_many(CACHE_TIER, sorted(keys))
    except Exception:
        return {}
    out = {}
    for key, data in frames.items():
        try:
            doc = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if (
            isinstance(doc, dict)
            and doc.get("refine_version") == REFINE_VERSION
            and doc.get("verdict") in (VERDICT_CONFIRMED, VERDICT_INFEASIBLE)
        ):
            out[key] = {"verdict": doc["verdict"],
                        "reason": doc.get("reason")}
    return out


def _store_cached(backend, payloads):
    """Write fresh cacheable verdicts; store failures are non-fatal."""
    if backend is None or not payloads:
        return
    frames = {}
    for key, doc in payloads.items():
        stored = dict(doc)
        stored["refine_version"] = REFINE_VERSION
        frames[key] = json.dumps(stored, sort_keys=True).encode("utf-8")
    try:
        backend.put_many(CACHE_TIER, frames)
    except Exception:
        return


def refine_reports(reports, callgraph, options=None, stats=None,
                   backend=None, fingerprints=None):
    """Annotate every report with a feasibility verdict.

    Verdicts land in ``report.annotations["feasibility"]``.  With
    ``options.cache`` on, ``confirmed``/``infeasible`` verdicts are
    served from and written back to ``backend`` under
    (``fingerprints[report.function]``, ``report.report_hash``) keys;
    ``unknown`` is never cached (it may be a budget artifact).
    """
    options = options or RefineOptions()

    def count(name, amount=1):
        if stats is not None:
            stats.add(name, amount)

    keys = {}
    if options.cache:
        for report in reports:
            key = _cache_key(report, fingerprints)
            if key is not None:
                keys[id(report)] = key
    cached = (_load_cached(backend, set(keys.values()))
              if options.cache else {})
    fresh = {}
    for report in reports:
        key = keys.get(id(report))
        verdict = cached.get(key) if key is not None else None
        if verdict is not None:
            count("refine_cache_hits")
        else:
            verdict = classify_report(report, callgraph, options)
            if (
                options.cache
                and key is not None
                and verdict["verdict"] in (VERDICT_CONFIRMED,
                                           VERDICT_INFEASIBLE)
            ):
                fresh[key] = verdict
        report.annotations["feasibility"] = dict(verdict)
        count("refine_%s" % verdict["verdict"])
        if verdict["reason"] in ("budget-steps", "budget-paths",
                                 "budget-time", "budget-injected"):
            count("refine_budget_hits")
    if options.cache:
        _store_cached(backend, fresh)
    return reports


def verdict_of(report):
    """The report's verdict string, or None if it was never refined."""
    doc = report.annotations.get("feasibility")
    if isinstance(doc, dict):
        return doc.get("verdict")
    return None


def drop_infeasible(reports):
    """The reports minus those with an ``infeasible`` verdict."""
    return [r for r in reports if verdict_of(r) != VERDICT_INFEASIBLE]


def demote_infeasible(reports):
    """Move ``infeasible`` reports below the rest (both groups keep
    their relative order) and renumber ``rank`` annotations."""
    kept = [r for r in reports if verdict_of(r) != VERDICT_INFEASIBLE]
    demoted = [r for r in reports if verdict_of(r) == VERDICT_INFEASIBLE]
    if not demoted:
        return reports
    ranked = kept + demoted
    for position, report in enumerate(ranked, 1):
        if "rank" in report.annotations:
            report.annotations["rank"] = position
    return ranked


def apply_refine_mode(reports, mode):
    """Apply one ``--refine`` mode to an already-ranked report list.

    ``annotate`` leaves the order untouched (verdicts ride along as
    annotations only); ``demote`` sinks infeasible reports below the
    rest; ``drop`` removes them and renumbers the survivors' ``rank``
    annotations so rendered output stays 1-based and gapless.
    """
    if mode == "drop":
        kept = drop_infeasible(reports)
        if len(kept) != len(reports):
            for position, report in enumerate(kept, 1):
                if "rank" in report.annotations:
                    report.annotations["rank"] = position
        return kept
    if mode == "demote":
        return demote_infeasible(reports)
    return reports
