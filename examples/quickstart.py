#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 checker on the paper's Figure 2 code.

Run:  python examples/quickstart.py

Expected output: the two errors the paper's §2.2 walkthrough finds (use of
q after free at line 12, use of w after free at line 17) and *no* false
positive at line 11 -- that path is pruned by the §8 false-path analysis.
"""

import os

from repro.cfront.parser import parse
from repro.engine import Analysis
from repro.metal import compile_metal

FREE_CHECKER = """
sm free_checker {
 state decl any_pointer v;

 start: { kfree(v) } ==> v.freed ;

 v.freed: { *v } ==> v.stop,
    { err("using %s after free!", mc_identifier(v)); }
  | { kfree(v) } ==> v.stop,
    { err("double free of %s!", mc_identifier(v)); }
  ;
}
"""


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "fig2.c")) as handle:
        source = handle.read()

    checker = compile_metal(FREE_CHECKER)
    unit = parse(source, "fig2.c")
    analysis = Analysis([unit])
    result = analysis.run(checker)

    print("== reports ==")
    for report in result.reports:
        print(report.format())

    print()
    print("== engine statistics ==")
    for key, value in sorted(result.stats.items()):
        print("  %-22s %s" % (key, value))

    assert sorted(r.location.line for r in result.reports) == [12, 17], (
        "expected exactly the paper's two errors"
    )
    print("\nmatches the paper's Section 2.2 walkthrough.")


if __name__ == "__main__":
    main()
