"""The callout/action helper library (§4).

"xgcc provides an extensive library of functions useful as callouts."
These helpers are available both to Python-API checkers and, by name, to
textual metal callouts (``${ mc_is_call_to(fn, "gets") }``) and C code
actions (``err("using %s after free!", mc_identifier(v))``).

Functions marked with :func:`context_function` receive the match/action
context as an implicit first argument when invoked from textual metal.
"""

from repro.cfront import astnodes as ast
from repro.cfront.unparse import unparse


def context_function(fn):
    """Mark a library function as needing the context as first argument."""
    fn._needs_context = True
    return fn


def mc_identifier(node):
    """The source text of the expression a hole matched (for messages)."""
    if node is None:
        return "<none>"
    if isinstance(node, list):
        return ", ".join(unparse(n) for n in node)
    return unparse(node)


def mc_is_call_to(node, name):
    """True if ``node`` is a call to ``name`` or the callee named ``name``.

    Accepts either a whole :class:`Call` (an ``any_fn_call`` hole matched
    standalone) or a callee expression (the hole was in callee position).
    """
    if isinstance(node, ast.Call):
        return node.callee_name() == name
    if isinstance(node, ast.Ident):
        return node.name == name
    return False


def mc_callee_name(node):
    """The called function's name ('' when indirect)."""
    if isinstance(node, ast.Call):
        return node.callee_name() or ""
    if isinstance(node, ast.Ident):
        return node.name
    return ""


def mc_is_ident(node):
    return isinstance(node, ast.Ident)


def mc_name(node):
    if isinstance(node, ast.Ident):
        return node.name
    return ""


def mc_is_constant(node):
    return isinstance(node, (ast.IntLit, ast.CharLit, ast.FloatLit, ast.StringLit))


def mc_constant_value(node):
    if isinstance(node, (ast.IntLit, ast.CharLit, ast.FloatLit, ast.StringLit)):
        return node.value
    return None


def mc_is_null(node):
    """True for the literal null pointer: ``0`` or ``(T *)0``."""
    while isinstance(node, ast.Cast):
        node = node.operand
    return isinstance(node, ast.IntLit) and node.value == 0


def mc_num_args(node):
    if isinstance(node, ast.Call):
        return len(node.args)
    if isinstance(node, list):
        return len(node)
    return 0


def mc_arg(node, index):
    """The index'th argument of a call (or of an any_arguments binding)."""
    args = node.args if isinstance(node, ast.Call) else node
    if isinstance(args, list) and 0 <= index < len(args):
        return args[index]
    return None


def mc_contains(node, name):
    """True if identifier ``name`` occurs anywhere in ``node``."""
    if node is None:
        return False
    if isinstance(node, list):
        return any(mc_contains(item, name) for item in node)
    return ast.contains_identifier(node, name)


def mc_line(node):
    if node is None:
        return 0
    return node.location.line


@context_function
def mc_stmt(context):
    """The current program point (§4: 'the current program point,
    mc stmt')."""
    return context.point


@context_function
def mc_in_function(context, name):
    """True when the analysis is currently inside function ``name``."""
    engine = getattr(context, "engine", None)
    if engine is None:
        return False
    return engine.current_function_name() == name


@context_function
def mc_is_branch(context, node=None):
    """True when the (given or current) point is a branch condition --
    required for path-specific transitions that trigger on plain uses
    (e.g. the null checker's ``if (p)``)."""
    engine = getattr(context, "engine", None)
    if engine is None:
        return False
    return engine.point_is_branch_condition(node if node is not None else context.point)


def mc_is_deref_of(point, obj):
    """True if ``point`` dereferences ``obj``: ``*obj``, ``obj->f``, or
    ``obj[i]``."""
    if obj is None:
        return False
    key = ast.structural_key(obj)
    if isinstance(point, ast.Unary) and point.op == "*" and not point.postfix:
        return ast.structural_key(point.operand) == key
    if isinstance(point, ast.Member) and point.arrow:
        return ast.structural_key(point.obj) == key
    if isinstance(point, ast.Index):
        return ast.structural_key(point.array) == key
    return False


@context_function
def mc_annotation(context, node, key):
    """Read an AST annotation left by an earlier (composed) extension."""
    engine = getattr(context, "engine", None)
    if engine is None:
        return None
    return engine.annotations.get(node, key)


#: Everything textual metal can call by name.
LIBRARY = {
    "mc_identifier": mc_identifier,
    "mc_is_call_to": mc_is_call_to,
    "mc_callee_name": mc_callee_name,
    "mc_is_ident": mc_is_ident,
    "mc_name": mc_name,
    "mc_is_constant": mc_is_constant,
    "mc_constant_value": mc_constant_value,
    "mc_is_null": mc_is_null,
    "mc_num_args": mc_num_args,
    "mc_arg": mc_arg,
    "mc_contains": mc_contains,
    "mc_line": mc_line,
    "mc_is_branch": mc_is_branch,
    "mc_is_deref_of": mc_is_deref_of,
    "mc_stmt": mc_stmt,
    "mc_in_function": mc_in_function,
    "mc_annotation": mc_annotation,
}
