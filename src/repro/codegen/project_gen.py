"""Multi-module project generation: several translation units with a
shared header, cross-file call chains, and file-scope statics -- the
workload shape the §6 two-pass driver exists for.

:func:`apply_function_edits` simulates a developer editing k function
bodies (seeded, line-preserving), producing the before/after project
pairs the incremental driver benchmarks and differential tests measure
dirty-cone scheduling against.
"""

import random
import re

from repro.codegen.generator import BUG_KINDS, InjectedBug, generate_kernel_module

_SHARED_HEADER = """\
#ifndef GEN_SHARED_H
#define GEN_SHARED_H
#define GEN_MAGIC %d
struct device { int flags; int count; int lck; char *buf; };
#endif
"""


class GeneratedProject:
    """The generator output: {filename: source} plus ground truth."""

    def __init__(self, files, bugs, seed):
        self.files = files  # name -> source text
        self.bugs = bugs
        self.seed = seed

    def file_reader(self, path):
        """A Project file_reader serving this in-memory tree."""
        return self.files[path]

    def make_project(self):
        """Build a :class:`repro.driver.project.Project` over this tree."""
        from repro.driver.project import Project

        project = Project(file_reader=self.file_reader)
        return self.compile_into(project)

    def compile_into(self, project):
        """Run pass 1 for every module (header resolved via file_reader)."""
        for name in sorted(self.files):
            if name.endswith(".c"):
                project.compile_text(self.files[name], name)
        return project

    def __repr__(self):
        return "<GeneratedProject %d files, %d bugs, seed=%d>" % (
            len(self.files), len(self.bugs), self.seed,
        )


def generate_project(seed=0, n_modules=4, functions_per_module=12,
                     bug_rate=0.3, cross_calls=True):
    """Generate a project of ``n_modules`` C files.

    Each module gets its own kernel-style functions (with seeded bugs as
    in :func:`generate_kernel_module`), a file-scope static, and -- when
    ``cross_calls`` is set -- an exported entry point that calls into the
    next module, making interprocedural state flow across files.
    """
    rng = random.Random(seed)
    files = {"shared.h": _SHARED_HEADER % seed}
    bugs = []
    for index in range(n_modules):
        module_seed = rng.randrange(1 << 30)
        workload = generate_kernel_module(
            seed=module_seed,
            n_functions=functions_per_module,
            bug_rate=bug_rate,
        )
        # Prefix everything so names are unique across modules.
        prefix = "m%d_" % index
        source = workload.source
        for name in workload.function_names:
            source = source.replace(name, prefix + name)
        for bug in workload.bugs:
            bugs.append(InjectedBug(bug.kind, prefix + bug.function))

        chunks = ['#include "shared.h"\n']
        chunks.append("static int m%d_uses;\n" % index)
        # strip the module's own struct definition: it comes from shared.h
        source = "\n".join(
            line
            for line in source.splitlines()
            if not line.startswith("struct device {")
            and not line.startswith("/* generated")
        )
        chunks.append(source)
        if cross_calls and index + 1 < n_modules:
            chunks.append(
                "int m%d_entry(struct device *dev, int n) {\n"
                "    m%d_uses = m%d_uses + 1;\n"
                "    return m%d_entry(dev, n + 1);\n"
                "}\n" % (index, index, index, index + 1)
            )
        elif cross_calls:
            chunks.append(
                "int m%d_entry(struct device *dev, int n) {\n"
                "    m%d_uses = m%d_uses + 1;\n"
                "    return n;\n"
                "}\n" % (index, index, index)
            )
        files["module_%d.c" % index] = "\n".join(chunks)
    return GeneratedProject(files, bugs, seed)


def generate_global_project(seed=0, n_modules=3, functions_per_module=6,
                            bug_rate=0.3, audit_tags=(7, 11)):
    """A :func:`generate_project` tree extended with *global*-checker work.

    Every module additionally gets:

    - a guarded double free whose buggy path is dominated by ``panic()``
      -- clean only when the path-kill extension runs first, exercising
      annotation-store composition across extensions;
    - one ``audit(TAG)`` claimant per tag in ``audit_tags``, with the
      same tags repeated in every module, so the audit checker's
      cross-root user globals produce duplicate-tag reports whose text
      depends on serial root order.
    """
    generated = generate_project(
        seed=seed,
        n_modules=n_modules,
        functions_per_module=functions_per_module,
        bug_rate=bug_rate,
    )
    files = dict(generated.files)
    for index in range(n_modules):
        name = "module_%d.c" % index
        chunks = [files[name]]
        chunks.append(
            "int m%d_guarded(struct device *dev) {\n"
            "    struct device *p = kmalloc(8);\n"
            "    if (!p)\n"
            "        return -1;\n"
            "    if (dev->flags) {\n"
            "        panic();\n"
            "        kfree(p);\n"
            "        kfree(p);\n"
            "    }\n"
            "    kfree(p);\n"
            "    return 0;\n"
            "}\n" % index
        )
        for tag in audit_tags:
            chunks.append(
                "int m%d_audit_%d(struct device *dev) {\n"
                "    audit(%d);\n"
                "    return dev->count;\n"
                "}\n" % (index, tag, tag)
            )
        files[name] = "\n".join(chunks)
    return GeneratedProject(files, list(generated.bugs), seed)


def default_checkers():
    """The checker suite matched to the generator's bug kinds."""
    from repro.checkers import (
        free_checker,
        lock_checker,
        malloc_fail_checker,
        range_check_checker,
        user_pointer_checker,
    )

    return [
        free_checker(("kfree", "vfree")),
        lock_checker(),
        malloc_fail_checker(),
        range_check_checker(),
        user_pointer_checker(),
    ]


class FunctionEdit:
    """Ground truth for one simulated edit: which function's body
    changed, where, and how."""

    __slots__ = ("filename", "function", "line", "before", "after")

    def __init__(self, filename, function, line, before, after):
        self.filename = filename
        self.function = function
        self.line = line  # 1-based line number in the file
        self.before = before
        self.after = after

    def __repr__(self):
        return "<FunctionEdit %s:%d %s: %r -> %r>" % (
            self.filename, self.line, self.function, self.before, self.after,
        )


#: A generated definition opens at column 0 and its body closes with a
#: bare "}" line (generator.py emits exactly this shape).
_DEFINITION = re.compile(r"^int\s+(\w+)\s*\(.*\{\s*$")
#: Standalone integer literals (not digits inside identifiers like m0_uses).
_INT_LITERAL = re.compile(r"(?<![\w.])(\d+)(?![\w.])")


def _editable_functions(files):
    """``[(filename, function, line_index, line)]`` for every body line
    holding an integer literal, in deterministic order."""
    sites = {}
    for filename in sorted(files):
        if not filename.endswith(".c"):
            continue
        current = None
        for index, line in enumerate(files[filename].splitlines()):
            opened = _DEFINITION.match(line)
            if opened:
                current = opened.group(1)
                continue
            if line.strip() == "}":
                current = None
                continue
            if current and _INT_LITERAL.search(line):
                # Keep the first editable line per function: stable under
                # repeated edit rounds.
                sites.setdefault((filename, current), (index, line))
    return [
        (filename, function, index, line)
        for (filename, function), (index, line) in sorted(sites.items())
    ]


def apply_function_edits(generated, k=1, seed=0):
    """Simulate ``k`` seeded function-body edits.

    Each edit bumps one standalone integer literal inside a function body
    by 1 -- a real token-stream change, in place on its line, so the rest
    of the file keeps its line numbers (edits must dirty exactly the
    edited function's cone, not every function below it in the file).

    Returns ``(edited GeneratedProject, [FunctionEdit])``.  The edit list
    is the ground truth differential tests bound the dirty cone with.
    """
    rng = random.Random(seed)
    sites = _editable_functions(generated.files)
    if k > len(sites):
        raise ValueError(
            "asked for %d edits but only %d functions are editable"
            % (k, len(sites))
        )
    chosen = rng.sample(sites, k)
    files = dict(generated.files)
    edits = []
    for filename, function, index, line in sorted(chosen):
        lines = files[filename].splitlines(True)
        before = lines[index].rstrip("\n")
        match = _INT_LITERAL.search(before)
        after = (
            before[: match.start()]
            + str(int(match.group(1)) + 1)
            + before[match.end():]
        )
        lines[index] = after + "\n"
        files[filename] = "".join(lines)
        edits.append(FunctionEdit(filename, function, index + 1, before, after))
    edited = GeneratedProject(files, list(generated.bugs), generated.seed)
    return edited, edits


def score_project(generated, reports):
    """(hits, injected, false_positives) against the ground truth.

    A bug counts as found if any report lands in its function or (for
    the interprocedural kinds) in its helper.
    """
    buggy = {b.function for b in generated.bugs}
    helper_of = {b.function + "_discard": b.function for b in generated.bugs}
    hits = set()
    false_positives = []
    for report in reports:
        fn = report.function
        if fn in buggy:
            hits.add(fn)
        elif fn in helper_of:
            hits.add(helper_of[fn])
        else:
            false_positives.append(report)
    return len(hits), len(generated.bugs), false_positives
