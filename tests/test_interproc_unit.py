"""Unit tests for the refine/restore machinery itself (ArgumentMap, tree
substitution, exit-state partitioning) -- the integration behaviour is in
test_interproc.py."""

from repro.cfront import astnodes as ast
from repro.cfront.parser import parse, parse_expression
from repro.cfront.unparse import unparse
from repro.engine.interproc import (
    ArgumentMap,
    collect_applicable_edges,
    partition_exit_states,
    refine,
    restore,
    simplify,
)
from repro.engine.state import SMInstance, VarInstance
from repro.engine.summaries import EdgeSet, make_add_edge, make_transition_edge
from repro.metal import ANY_POINTER, Extension


def make_ext():
    ext = Extension("t")
    ext.state_var("v", ANY_POINTER)
    ext.transition("start", "{ kfree(v) }", to="v.freed")
    return ext


def argmap_for(call_text, callee_decl_text):
    call = parse_expression(call_text)
    unit = parse(callee_decl_text)
    return ArgumentMap(call, unit.decls[0])


class TestArgumentMap:
    def test_plain_mapping(self):
        amap = argmap_for("f(a)", "void f(int *xf);")
        obj = parse_expression("a")
        assert unparse(amap.to_callee(obj)) == "xf"
        back = amap.to_caller(parse_expression("xf"))
        assert unparse(back) == "a"

    def test_subtree_mapping(self):
        amap = argmap_for("f(a)", "void f(int *xf);")
        obj = parse_expression("a->field")
        assert unparse(amap.to_callee(obj)) == "xf->field"
        assert unparse(amap.to_caller(parse_expression("xf->next->d"))) == "a->next->d"

    def test_addrof_mapping(self):
        amap = argmap_for("f(&a)", "void f(int **xf);")
        assert unparse(amap.to_callee(parse_expression("a"))) == "*xf"
        assert unparse(amap.to_caller(parse_expression("*xf"))) == "a"

    def test_addrof_field(self):
        amap = argmap_for("f(&a)", "void f(int **xf);")
        mapped = amap.to_callee(parse_expression("a.len"))
        assert unparse(mapped) == "(*xf).len"

    def test_unrelated_object(self):
        amap = argmap_for("f(a)", "void f(int *xf);")
        assert amap.to_callee(parse_expression("b")) is None
        assert amap.to_caller(parse_expression("other")) is None

    def test_complex_actual(self):
        amap = argmap_for("f(dev->buf)", "void f(char *xf);")
        obj = parse_expression("dev->buf")
        assert unparse(amap.to_callee(obj)) == "xf"
        assert unparse(amap.to_caller(parse_expression("xf"))) == "dev->buf"

    def test_simplify_star_amp(self):
        assert unparse(simplify(parse_expression("*(&x)"))) == "x"
        assert unparse(simplify(parse_expression("&(*p)"))) == "p"
        assert unparse(simplify(parse_expression("*(&(a[i])) + 1"))) == "a[i] + 1"


class TestRefine:
    def test_globals_pass_unchanged(self):
        sm = SMInstance(make_ext())
        sm.add(VarInstance("v", parse_expression("global_ptr"), "freed"))
        amap = argmap_for("f(x)", "void f(int *xf);")
        refined, saved = refine(sm, amap, caller_scope_names={"x", "y"})
        assert len(refined.active_vars) == 1
        assert unparse(refined.active_vars[0].obj) == "global_ptr"
        assert saved == []

    def test_locals_saved(self):
        sm = SMInstance(make_ext())
        local = sm.add(VarInstance("v", parse_expression("y"), "freed"))
        amap = argmap_for("f(x)", "void f(int *xf);")
        refined, saved = refine(sm, amap, caller_scope_names={"x", "y"})
        assert refined.active_vars == []
        assert saved == [local]

    def test_arg_retargeted(self):
        sm = SMInstance(make_ext())
        sm.add(VarInstance("v", parse_expression("x"), "freed"))
        amap = argmap_for("f(x)", "void f(int *xf);")
        refined, saved = refine(sm, amap, caller_scope_names={"x"})
        assert unparse(refined.active_vars[0].obj) == "xf"

    def test_file_scope_inactivation(self):
        sm = SMInstance(make_ext())
        inst = sm.add(VarInstance("v", parse_expression("modvar"), "freed"))
        inst.file_scope_file = "a.c"
        amap = argmap_for("f(x)", "void f(int *xf);")
        refined, __ = refine(sm, amap, caller_scope_names={"x"},
                             callee_file="b.c")
        assert refined.active_vars[0].inactive

    def test_file_scope_same_file_stays_active(self):
        sm = SMInstance(make_ext())
        inst = sm.add(VarInstance("v", parse_expression("modvar"), "freed"))
        inst.file_scope_file = "a.c"
        amap = argmap_for("f(x)", "void f(int *xf);")
        refined, __ = refine(sm, amap, caller_scope_names={"x"},
                             callee_file="a.c")
        assert not refined.active_vars[0].inactive


class TestPartitioning:
    def edges_for(self, *specs):
        """specs: (obj, start_value, end_value_or_None-for-add)"""
        edges = EdgeSet()
        for obj, start_value, end_value in specs:
            if start_value is None:
                edges.add(
                    make_add_edge(
                        "start", "start",
                        VarInstance("v", parse_expression(obj), end_value),
                    )
                )
            else:
                entry = VarInstance("v", parse_expression(obj), start_value)
                exit_ = entry.copy()
                exit_.value = end_value
                edges.add(make_transition_edge("start", entry, "start", exit_))
        return edges

    def test_single_partition(self):
        sm = SMInstance(make_ext())
        p = sm.add(VarInstance("v", parse_expression("p"), "freed"))
        summary = self.edges_for(("p", "freed", "freed"), ("w", None, "freed"))
        assignments, adds, globals_, unmatched = collect_applicable_edges(
            sm, summary
        )
        parts = partition_exit_states(sm, assignments, adds, globals_)
        assert len(parts) == 1
        objs = sorted(unparse(i.obj) for i in parts[0].active_vars)
        assert objs == ["p", "w"]

    def test_conflicting_ends_split_partitions(self):
        # p exits freed on one path and (say) borrowed on another:
        # disjoint exit states.
        sm = SMInstance(make_ext())
        sm.add(VarInstance("v", parse_expression("p"), "freed"))
        summary = self.edges_for(
            ("p", "freed", "freed"), ("p", "freed", "borrowed")
        )
        assignments, adds, globals_, __ = collect_applicable_edges(sm, summary)
        parts = partition_exit_states(sm, assignments, adds, globals_)
        values = sorted(p.active_vars[0].value for p in parts)
        assert values == ["borrowed", "freed"]

    def test_add_edge_needs_unknown_object(self):
        # an add edge for an object we already track must not apply.
        sm = SMInstance(make_ext())
        sm.add(VarInstance("v", parse_expression("w"), "freed"))
        summary = self.edges_for(("w", None, "freed"))
        assignments, adds, globals_, unmatched = collect_applicable_edges(
            sm, summary
        )
        assert adds == []
        assert unmatched != []  # w has no transition edge here

    def test_duplicate_partitions_merged(self):
        sm = SMInstance(make_ext())
        sm.add(VarInstance("v", parse_expression("p"), "freed"))
        summary = self.edges_for(("p", "freed", "freed"))
        assignments, adds, globals_, __ = collect_applicable_edges(sm, summary)
        # duplicating the same edge list should still yield one partition
        parts = partition_exit_states(sm, assignments + assignments, adds, globals_)
        assert len(parts) == 1


class TestRestore:
    def test_saved_reattached(self):
        ext = make_ext()
        original = SMInstance(ext)
        saved = [VarInstance("v", parse_expression("loc"), "freed")]
        part = SMInstance(ext)
        amap = argmap_for("f(x)", "void f(int *xf);")
        restored = restore([part], saved, amap, original, callee_local_names=set())
        assert unparse(restored[0].active_vars[0].obj) == "loc"

    def test_callee_locals_dropped(self):
        ext = make_ext()
        original = SMInstance(ext)
        part = SMInstance(ext)
        part.add(VarInstance("v", parse_expression("q"), "freed"))
        amap = argmap_for("f(x)", "void f(int *xf);")
        restored = restore([part], [], amap, original, callee_local_names={"q"})
        assert restored[0].active_vars == []

    def test_formal_mapped_back(self):
        ext = make_ext()
        original = SMInstance(ext)
        part = SMInstance(ext)
        part.add(VarInstance("v", parse_expression("xf->data"), "freed"))
        amap = argmap_for("f(dev)", "void f(struct s *xf);")
        restored = restore([part], [], amap, original, callee_local_names=set())
        assert unparse(restored[0].active_vars[0].obj) == "dev->data"
