"""Tainted-index checker: user-supplied integers must be bounds-checked
before indexing an array (the second Oakland'02 rule family).

Path-specific transitions on the bounds comparison move the index from
``tainted`` to ``checked`` on the guarded side only.
"""

from repro.cfront import astnodes as ast
from repro.metal import ANY_ARGUMENTS, ANY_EXPR, ANY_SCALAR, Extension
from repro.metal.patterns import Callout


def range_check_checker(taint_sources=("get_user_int", "ioctl_int")):
    ext = Extension("range_check_checker")
    ext.state_var("v", ANY_SCALAR)
    ext.decl("args", ANY_ARGUMENTS)
    ext.decl("bound", ANY_EXPR)
    ext.decl("arr", ANY_EXPR)
    ext.default_severity = "SECURITY"

    for fn in taint_sources:
        ext.transition("start", "{ v = %s(args) }" % fn, to="v.tainted")

    # An upper-bound comparison sanitizes the true side.
    ext.transition("v.tainted", "{ v < bound }",
                   true_to="v.checked", false_to="v.tainted")
    ext.transition("v.tainted", "{ v <= bound }",
                   true_to="v.checked", false_to="v.tainted")
    ext.transition("v.tainted", "{ v >= bound }",
                   true_to="v.tainted", false_to="v.checked")
    ext.transition("v.tainted", "{ v > bound }",
                   true_to="v.tainted", false_to="v.checked")

    indexed = Callout(_used_as_index, "tainted value used as array index")
    ext.transition(
        "v.tainted",
        indexed,
        to="v.stop",
        action=lambda ctx: ctx.err(
            "user-controlled index %s used without a bounds check!",
            ctx.identifier("v"),
            severity="SECURITY",
            rule_id="tainted-index",
        ),
    )
    ext.transition(
        "v.checked",
        indexed,
        to="v.stop",
        action=lambda ctx: ctx.count_example("tainted-index"),
    )
    return ext


def _used_as_index(context):
    point = context.point
    obj = context.bindings.get("v")
    if not isinstance(point, ast.Index) or obj is None:
        return False
    return ast.structurally_equal(point.index, obj)
