"""Fault *plans*: the installed spec list plus its cross-process state.

A plan is a list of spec dicts naming instrumented sites (see
:mod:`repro.faults` for the site table), installed process-wide with
:func:`install` and exported to worker processes through the
``XGCC_FAULTS`` environment variable.  This module owns the plan model
and its determinism machinery (shared counters, stable hashing); the
sites that *consume* plans live in :mod:`repro.faults.inject`.
"""

import hashlib
import json
import os
import shutil
import tempfile

#: Environment variable carrying the active plan to worker processes.
ENV_VAR = "XGCC_FAULTS"

_SITES = frozenset([
    "pass1.worker.kill", "pass1.worker.hang", "pass1.parse",
    "pass2.worker.kill", "pass2.worker.hang", "pass2.analysis",
    "cache.corrupt", "summary.corrupt", "summary.manifest", "engine.budget",
    "daemon.watcher", "daemon.request",
    "store.request", "store.conflict", "store.slow",
    "refine.budget", "refine.error",
])


class FaultPlan:
    """An installed set of fault specs plus the shared counter state."""

    def __init__(self, specs, seed=0, state_dir=None, installer_pid=None):
        self.specs = [dict(spec) for spec in specs]
        for spec in self.specs:
            if spec.get("site") not in _SITES:
                raise ValueError("unknown fault site: %r" % spec.get("site"))
        self.seed = seed
        self.state_dir = state_dir
        self.installer_pid = installer_pid if installer_pid else os.getpid()
        self._local_counts = {}

    def to_json(self):
        return json.dumps({
            "specs": self.specs,
            "seed": self.seed,
            "state_dir": self.state_dir,
            "installer_pid": self.installer_pid,
        })

    @classmethod
    def from_json(cls, blob):
        data = json.loads(blob)
        return cls(data["specs"], data["seed"], data["state_dir"],
                   data["installer_pid"])


_PLAN = None


def install(specs, seed=0):
    """Install a plan process-wide and export it to worker processes."""
    global _PLAN
    state_dir = tempfile.mkdtemp(prefix="xgcc-faults-")
    _PLAN = FaultPlan(specs, seed=seed, state_dir=state_dir)
    os.environ[ENV_VAR] = _PLAN.to_json()
    return _PLAN


def clear():
    """Remove the active plan (and its shared counter state)."""
    global _PLAN
    plan = _plan()
    _PLAN = None
    os.environ.pop(ENV_VAR, None)
    if plan is not None and plan.state_dir and plan.installer_pid == os.getpid():
        shutil.rmtree(plan.state_dir, ignore_errors=True)


class injected:
    """``with faults.injected([...]):`` -- install, then always clear."""

    def __init__(self, specs, seed=0):
        self.specs = specs
        self.seed = seed

    def __enter__(self):
        return install(self.specs, seed=self.seed)

    def __exit__(self, *exc):
        clear()
        return False


def _plan():
    """The active plan: installed locally, or adopted from the env (the
    path a worker process takes on its first check)."""
    global _PLAN
    if _PLAN is not None:
        return _PLAN
    blob = os.environ.get(ENV_VAR)
    if blob:
        _PLAN = FaultPlan.from_json(blob)
        return _PLAN
    return None


def active():
    """Is any fault plan installed?  (Cheap gate for hot paths.)"""
    return _plan() is not None


def in_worker():
    """Is this process a worker (not the plan's installing process)?"""
    plan = _plan()
    return plan is not None and os.getpid() != plan.installer_pid


def _stable_fraction(seed, site, key):
    """A deterministic [0, 1) value from (seed, site, key) -- the same in
    every process, so probabilistic plans reproduce exactly."""
    text = "%s|%s|%s" % (seed, site, key)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _bump(plan, index):
    """Increment spec ``index``'s shared attempt counter; returns the
    count *including* this attempt.

    The counter is a file in the plan's state directory opened with
    ``O_APPEND``: the kernel serializes the writes, and ``lseek`` after
    our own write reports exactly how many attempts preceded us -- an
    atomic cross-process counter with no locking.
    """
    if not plan.state_dir or not os.path.isdir(plan.state_dir):
        count = plan._local_counts.get(index, 0) + 1
        plan._local_counts[index] = count
        return count
    path = os.path.join(plan.state_dir, "spec-%d" % index)
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, b".")
        return os.lseek(fd, 0, os.SEEK_CUR)
    finally:
        os.close(fd)
