"""Extension state as the engine sees it (§3.1, §5.1).

``var_state``/``sm_instance`` from Figure 4 map to :class:`VarInstance` and
:class:`SMInstance`.  An extension's state is a set of *state tuples*
``(gstate, v)`` where ``v`` is a variable-specific instance or the
placeholder ``<>`` (§5.2); :func:`state_tuples` computes that view.

Modifications to both ``gstate`` and ``active_vars`` are private to each
path: the DFS copies the SMInstance before exploring each successor, so
mutations revert on backtrack.
"""

from repro.cfront import astnodes as ast
from repro.metal.sm import PLACEHOLDER, STOP

#: The pseudo state value in an add edge's start tuple (§5.2): "the edge
#: only applies when we know nothing about t at the entry to b."
UNKNOWN = "$unknown"


class VarInstance:
    """One variable-specific instance: a state value attached to a program
    object, plus the extension-defined data value (§3.1)."""

    __slots__ = (
        "var_name",
        "obj",
        "obj_key",
        "value",
        "data",
        "uid",
        "created_at",
        "created_location",
        "origin_location",
        "conditionals_crossed",
        "synonym_chain",
        "synonym_group",
        "inactive",
        "file_scope_file",
        "call_depth_at_creation",
        "history",
    )

    _next_uid = [0]

    def __init__(self, var_name, obj, value, data=None):
        self.var_name = var_name
        self.obj = obj  # AST tree for the program object
        self.obj_key = ast.structural_key(obj)
        self.value = value
        self.data = dict(data) if data else {}
        # A path-stable identity: copies share the uid, fresh instances get
        # a new one.  Block-summary recording maps entry instances to their
        # exit states through it.
        VarInstance._next_uid[0] += 1
        self.uid = VarInstance._next_uid[0]
        self.file_scope_file = None
        # The "why" trace (§3.2): (event-text, location) steps from the
        # moment tracking began, attached to reports for inspection.
        self.history = []
        # Where (block id, item index) the instance was created: an instance
        # cannot trigger a transition at its creation statement (§3.1).
        self.created_at = None
        self.created_location = None
        # Where the tracked property began (for ranking distance).
        self.origin_location = None
        # Ranking inputs (§9): conditionals crossed since creation, synonym
        # assignment-chain length, call depth where the state was attached.
        self.conditionals_crossed = 0
        self.synonym_chain = 0
        self.synonym_group = None
        # File-scope variables are temporarily inactivated across calls into
        # other files (§6.1).
        self.inactive = False
        self.call_depth_at_creation = 0

    def copy(self):
        clone = VarInstance(self.var_name, self.obj, self.value, self.data)
        clone.obj_key = self.obj_key
        clone.uid = self.uid
        clone.created_at = self.created_at
        clone.created_location = self.created_location
        clone.origin_location = self.origin_location
        clone.conditionals_crossed = self.conditionals_crossed
        clone.synonym_chain = self.synonym_chain
        clone.synonym_group = self.synonym_group
        clone.inactive = self.inactive
        clone.file_scope_file = self.file_scope_file
        clone.call_depth_at_creation = self.call_depth_at_creation
        clone.history = list(self.history)
        return clone

    def record(self, event, location=None):
        """Append one step to the why-trace."""
        self.history.append((event, location))

    def retarget(self, new_obj):
        """Attach this instance to a different program object (refine and
        restore move state between caller and callee scopes, §6.1)."""
        self.obj = new_obj
        self.obj_key = ast.structural_key(new_obj)

    def data_key(self):
        """A hashable digest of the data value for cache tuples."""
        if not self.data:
            return None
        try:
            return frozenset(self.data.items())
        except TypeError:
            # Unhashable data: fall back to identity; disables caching for
            # this instance rather than mis-caching it.
            return id(self)

    def tuple_key(self, gstate):
        """This instance's state tuple given the global value."""
        return (gstate, (self.var_name, self.obj_key, self.value, self.data_key()))

    def __repr__(self):
        from repro.cfront.unparse import unparse

        return "%s:%s->%s" % (self.var_name, unparse(self.obj), self.value)


class SMInstance:
    """The state of one extension along the current path (Fig. 4)."""

    __slots__ = ("extension", "gstate", "active_vars", "pending_splits",
                 "path_data", "restricted")

    def __init__(self, extension, gstate=None, active_vars=None):
        self.extension = extension
        self.gstate = gstate if gstate is not None else extension.initial_global
        self.active_vars = list(active_vars) if active_vars is not None else []
        # Path-local general-purpose storage for extension escapes; copied
        # at path splits so mutations revert on backtrack (like gstate).
        self.path_data = {}
        # Path-specific transitions deferred until a branch direction is
        # chosen: list of (instance-or-None, PathSplit, matched point).
        self.pending_splits = []
        # ``(var_name, obj_key)`` pairs dropped by the §5.3 partial-cache
        # restriction on this path: the cache already owns these objects'
        # continuations, so summary application must not resurrect them
        # (a creation point re-tracking the object clears its entry).
        self.restricted = set()

    def copy(self):
        clone = SMInstance(self.extension, self.gstate)
        clone.path_data = dict(self.path_data)
        clone.restricted = set(self.restricted)
        clone.active_vars = [inst.copy() for inst in self.active_vars]
        clone.pending_splits = []
        for inst, split, point in self.pending_splits:
            if inst is None:
                clone.pending_splits.append((None, split, point))
            else:
                index = self.active_vars.index(inst)
                clone.pending_splits.append((clone.active_vars[index], split, point))
        return clone

    def find(self, obj_key, var_name=None):
        """The live instance attached to the object with this key, if any;
        restricted to one state variable family when ``var_name`` given."""
        for inst in self.active_vars:
            if inst.obj_key == obj_key and (
                var_name is None or inst.var_name == var_name
            ):
                return inst
        return None

    def add(self, instance):
        self.active_vars.append(instance)
        return instance

    def remove(self, instance):
        if instance in self.active_vars:
            self.active_vars.remove(instance)
        self.pending_splits = [
            entry for entry in self.pending_splits if entry[0] is not instance
        ]

    def live_instances(self):
        return [inst for inst in self.active_vars if not inst.inactive]

    def __repr__(self):
        return "<SMInstance %s gstate=%s vars=%r>" % (
            self.extension.name,
            self.gstate,
            self.active_vars,
        )


def state_tuples(sm):
    """The set-of-state-tuples view of an SMInstance (§5.2).

    The placeholder element "persists throughout the analysis, but it is
    ignored whenever active_vars is nonempty" (§5.3).
    """
    live = [inst for inst in sm.active_vars if not inst.inactive]
    if not live:
        return {(sm.gstate, PLACEHOLDER)}
    return {inst.tuple_key(sm.gstate) for inst in live}


def tuple_is_placeholder(tup):
    return tup[1] == PLACEHOLDER


def describe_tuple(tup):
    """Human-readable form of a state tuple, in the paper's notation."""
    gstate, rest = tup
    if rest == PLACEHOLDER:
        return "(%s,<>)" % gstate
    var_name, obj_key, value, __ = rest
    return "(%s,%s:%s->%s)" % (gstate, var_name, _key_text(obj_key), value)


def _key_text(obj_key):
    """Best-effort rendering of a structural key (for summaries/debug)."""
    if isinstance(obj_key, tuple) and obj_key and obj_key[0] == "Ident":
        return obj_key[1][0]
    return _flatten_key(obj_key)


def _flatten_key(key):
    if isinstance(key, tuple):
        return "".join(str(_flatten_key(part)) for part in key if part != ())
    return str(key)
