"""The multi-client HTTP report server (``xgcc --watch --http-port N``).

The daemon's UNIX-socket protocol serves one client at a time with the
full analysis surface; this server is the *report* surface promoted to
HTTP (stdlib ``http.server``, threaded) so any number of CI bots and
editor plugins can poll runs, diffs, and triage concurrently without
ever running a cold analysis:

====================  =====================================================
``GET /ping``         liveness + protocol version
``GET /reports``      the current tree's ranked reports, served from the
                      daemon's pinned warm state (a warm ``analyze``)
``GET /runs``         recorded run history (id, timestamp, report count)
``GET /runs/<id>``    one stored run's structured reports
``GET /diff``         ``?base=&head=`` hash set-difference between two
                      runs; ``head=current`` (the default with a live
                      daemon) diffs a stored base against the tree as it
                      is now
``GET /triage``       the shared triage document
``POST /triage``      record triage entries (suppressions, severity
                      overrides) into the shared store; the daemon's
                      warm response cache is invalidated so the next
                      ``analyze`` re-renders under the new state
``GET /stats``        the daemon's cumulative stats
====================  =====================================================

Every response is JSON.  The server can also run *standalone* over a
store backend with no daemon (``python -m repro.driver.report_server``):
the history/diff/triage endpoints work identically -- ``/reports`` then
serves the latest recorded run -- so a dashboard can sit on a shared
RemoteStore with no analysis capability at all.

Concurrency: handlers run on one thread per connection
(``ThreadingHTTPServer``); everything touching the daemon goes through
``daemon.lock`` (shared with the UNIX-socket serve loop), and triage
writes are serialized by a server-side lock.
"""

import argparse
import json
import os
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.reports.history import RunHistory, RunHistoryError
from repro.reports.triage import TriageEntry, TriageError, TriageStore

#: Bump when the endpoint shapes change; every response carries it.
REPORT_PROTOCOL = 1


class ReportServerError(Exception):
    """Server-side setup failure (no backend, bind error)."""


class _Routes:
    """The endpoint logic, separated from HTTP plumbing for testing."""

    def __init__(self, daemon=None, backend=None, stats=None):
        self.daemon = daemon
        if backend is None and daemon is not None:
            backend = daemon.backend()
        if backend is None:
            raise ReportServerError(
                "report server needs a store backend or a daemon"
            )
        self.backend = backend
        self.stats = stats if stats is not None else (
            daemon.stats if daemon is not None else None
        )
        self.history = RunHistory(self.backend, stats=self.stats)
        self._triage_lock = threading.Lock()

    def _count(self, name, amount=1):
        if self.stats is not None:
            self.stats.add(name, amount)

    # -- endpoint handlers -------------------------------------------------

    def ping(self):
        return 200, {"ok": True, "protocol": REPORT_PROTOCOL,
                     "pid": os.getpid(),
                     "live": self.daemon is not None}

    def runs(self):
        return 200, {"ok": True, "protocol": REPORT_PROTOCOL,
                     "runs": self.history.list_runs()}

    def run_reports(self, run_id):
        try:
            doc = self.history.load_run(self.history.resolve_run_id(run_id))
        except RunHistoryError as err:
            return 404, {"ok": False, "protocol": REPORT_PROTOCOL,
                         "error": str(err)}
        return 200, {"ok": True, "protocol": REPORT_PROTOCOL,
                     "run_id": doc.get("run_id"),
                     "timestamp": doc.get("timestamp"),
                     "meta": doc.get("meta") or {},
                     "reports": doc.get("reports") or []}

    def current_reports(self):
        """The tree as it is now: a warm daemon ``analyze`` when live,
        the latest recorded run otherwise."""
        if self.daemon is not None:
            with self.daemon.lock:
                response = self.daemon.analyze()
                reports = list(self.daemon._last_reports)
            return 200, {
                "ok": True, "protocol": REPORT_PROTOCOL,
                "run_id": response.get("run_id"),
                "report_count": len(reports),
                "text": response.get("reports", ""),
                "served_from": response.get("served_from"),
                "reports": [report.to_dict() for report in reports],
            }
        latest = self.history.latest_run_id()
        if latest is None:
            return 404, {"ok": False, "protocol": REPORT_PROTOCOL,
                         "error": "no runs recorded yet"}
        return self.run_reports(latest)

    def diff(self, query):
        base = (query.get("base") or ["latest"])[0]
        head = (query.get("head") or
                ["current" if self.daemon is not None else "latest"])[0]
        triage = self._load_triage()
        try:
            if head == "current" and self.daemon is not None:
                with self.daemon.lock:
                    self.daemon.analyze()
                    head_reports = list(self.daemon._last_reports)
                diff = self.history.diff(base, None, triage=triage,
                                         head_reports=head_reports)
            else:
                diff = self.history.diff(base, head, triage=triage)
        except RunHistoryError as err:
            return 404, {"ok": False, "protocol": REPORT_PROTOCOL,
                         "error": str(err)}
        diff.update(ok=True, protocol=REPORT_PROTOCOL)
        return 200, diff

    def _load_triage(self):
        try:
            return TriageStore.load_backend(self.backend)
        except TriageError:
            self._count("triage_load_errors")
            return TriageStore()

    def triage_get(self):
        doc = self._load_triage().to_doc()
        doc.update(ok=True, protocol=REPORT_PROTOCOL)
        return 200, doc

    def triage_post(self, body):
        """Record triage entries.  Body: one entry object, or
        ``{"entries": [...]}``; each entry is the TriageEntry document
        shape (``kind``, ``key``, optional ``verdict``/``severity``/
        ``reason``/``author``)."""
        try:
            doc = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as err:
            return 400, {"ok": False, "protocol": REPORT_PROTOCOL,
                         "error": "undecodable body: %s" % err}
        entries = doc.get("entries") if isinstance(doc, dict) else None
        if entries is None:
            entries = [doc]
        with self._triage_lock:
            store = self._load_triage()
            try:
                for entry in entries:
                    parsed = TriageEntry.from_dict(entry)
                    if parsed.created is None:
                        parsed.created = time.time()
                    store.add(parsed)
            except (TriageError, AttributeError, TypeError) as err:
                return 400, {"ok": False, "protocol": REPORT_PROTOCOL,
                             "error": str(err)}
            store.save_backend(self.backend)
        self._count("triage_posts")
        if self.daemon is not None:
            with self.daemon.lock:
                self.daemon.invalidate()
        return 200, {"ok": True, "protocol": REPORT_PROTOCOL,
                     "entries": len(store)}

    def server_stats(self):
        if self.daemon is not None:
            with self.daemon.lock:
                payload = self.daemon.stats.as_dict()
        elif self.stats is not None:
            payload = self.stats.as_dict()
        else:
            payload = {}
        return 200, {"ok": True, "protocol": REPORT_PROTOCOL,
                     "stats": payload}

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, method, path, query, body):
        """Route one request; returns ``(status, json_payload)``."""
        self._count("report_server_requests")
        try:
            if method == "GET":
                if path == "/ping":
                    return self.ping()
                if path == "/runs":
                    return self.runs()
                if path.startswith("/runs/"):
                    run_id = path[len("/runs/"):]
                    if run_id.endswith("/reports"):
                        run_id = run_id[: -len("/reports")]
                    return self.run_reports(run_id.strip("/"))
                if path == "/reports":
                    return self.current_reports()
                if path == "/diff":
                    return self.diff(query)
                if path == "/triage":
                    return self.triage_get()
                if path == "/stats":
                    return self.server_stats()
            elif method == "POST":
                if path == "/triage":
                    return self.triage_post(body)
            self._count("report_server_errors")
            return 404, {"ok": False, "protocol": REPORT_PROTOCOL,
                         "error": "no such endpoint: %s %s" % (method, path)}
        except Exception as err:  # degrade, never kill the worker thread
            self._count("report_server_errors")
            return 500, {"ok": False, "protocol": REPORT_PROTOCOL,
                         "error": repr(err)}


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def _respond(self, method):
        parsed = urlparse(self.path)
        body = b""
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            body = self.rfile.read(length)
        status, payload = self.server.routes.dispatch(
            method, parsed.path, parse_qs(parsed.query), body
        )
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):
        self._respond("GET")

    def do_POST(self):
        self._respond("POST")

    def log_message(self, format, *args):
        pass  # request logging lives in the stats counters


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ReportServer:
    """The threaded HTTP report server.

    ``start()`` binds on a daemon thread and returns once listening
    (tests read ``url``); ``serve_forever()`` runs in the foreground;
    ``stop()`` shuts the threaded server down.
    """

    def __init__(self, daemon=None, backend=None, host="127.0.0.1",
                 port=0, stats=None):
        self.routes = _Routes(daemon=daemon, backend=backend, stats=stats)
        self.host = host
        self.port = port
        self._httpd = None
        self._thread = None

    @property
    def url(self):
        return "http://%s:%d" % (self.host, self.port)

    def _bind(self):
        if self._httpd is None:
            self._httpd = _Server((self.host, self.port), _Handler)
            self._httpd.routes = self.routes
            self.port = self._httpd.server_address[1]
        return self._httpd

    def start(self):
        """Serve on a daemon thread; returns the bound URL."""
        httpd = self._bind()
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()
        return self.url

    def serve_forever(self):
        self._bind().serve_forever(poll_interval=0.1)

    def stop(self):
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="xgcc-reports",
        description="standalone HTTP report server over a store backend "
        "(run history, diffs, and triage; no analysis)",
    )
    parser.add_argument("--cache-dir", help="local store directory")
    parser.add_argument("--store-url",
                        default=os.environ.get("XGCC_STORE") or None,
                        help="shared artifact-store server URL")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: any free port)")
    args = parser.parse_args(argv)

    from repro.driver.store import open_store

    backend = open_store(cache_dir=args.cache_dir, store_url=args.store_url)
    if backend is None:
        parser.error("need --cache-dir or --store-url")
    server = ReportServer(backend=backend, host=args.host, port=args.port)
    server._bind()
    print("xgcc-reports: serving on %s" % server.url, file=sys.stderr,
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
