"""Metal state machines (§2.1, §3).

An :class:`Extension` declares one global state variable and (optionally)
one variable-specific state variable, the state values bound to each, and
per-state transition lists.  The engine executes extensions against the
CFG; an extension's *state* at any moment is the set of state tuples
``(global value, instance value)`` (§3.1).

The Python API is deliberately close to the metal surface syntax::

    free = Extension("free_checker")
    v = free.state_var("v", ANY_POINTER)
    free.transition("start", "{ kfree(v) }", to="v.freed")
    free.transition("v.freed", "{ *v }", to="v.stop",
                    action=lambda ctx: ctx.err("using %s after free!",
                                               ctx.identifier("v")))
    free.transition("v.freed", "{ kfree(v) }", to="v.stop",
                    action=lambda ctx: ctx.err("double free of %s!",
                                               ctx.identifier("v")))

C code actions become Python callables receiving an :class:`ActionContext`.
"""

from repro.metal.metatypes import MetaType
from repro.metal.patterns import EndOfPath, Pattern, compile_pattern

#: Name of the implicitly-defined global state variable.
GLOBAL = "$global"

#: The sink state: assigning it removes the instance's SM (§2.1).
STOP = "stop"

#: The placeholder value for "no instances known" (§5.2).
PLACEHOLDER = "<>"


class StateRef:
    """A resolved state reference: the global value ``start`` or a
    variable-bound value ``v.freed``."""

    __slots__ = ("var", "value")

    def __init__(self, var, value):
        self.var = var  # GLOBAL or the specific variable's name
        self.value = value

    @property
    def is_global(self):
        return self.var == GLOBAL

    def __eq__(self, other):
        return (
            isinstance(other, StateRef)
            and other.var == self.var
            and other.value == self.value
        )

    def __hash__(self):
        return hash((self.var, self.value))

    def __repr__(self):
        if self.is_global:
            return self.value
        return "%s.%s" % (self.var, self.value)


class PathSplit:
    """A path-specific destination (§3.2): different states on the true and
    false branches out of the condition where the transition fired."""

    __slots__ = ("true_state", "false_state")

    def __init__(self, true_state, false_state):
        self.true_state = true_state
        self.false_state = false_state

    def __repr__(self):
        return "PathSplit(true=%r, false=%r)" % (self.true_state, self.false_state)


class Transition:
    """One transition rule.

    ``source`` is the :class:`StateRef` whose transition list contains this
    rule.  ``target`` is a StateRef, a :class:`PathSplit`, or None (the
    state is unchanged -- an action-only rule).  ``action`` is a callable
    of one :class:`ActionContext` argument (or None).
    """

    def __init__(self, source, pattern, target=None, action=None):
        self.source = source
        self.pattern = pattern
        self.target = target
        self.action = action

    @property
    def creates_instance(self):
        """A rule in a global state whose target is variable-bound creates a
        new SM instance (like the free checker's start rule)."""
        target = self.target
        if isinstance(target, PathSplit):
            target = target.true_state
        return (
            self.source.is_global
            and isinstance(target, StateRef)
            and not target.is_global
        )

    def __repr__(self):
        return "Transition(%r, %r ==> %r)" % (self.source, self.pattern, self.target)


class Extension:
    """A metal extension: state variables, values, and transitions."""

    # Derived-structure caches (per-state transition grouping, the
    # end-of-path flag, the compiled matcher tables).  Each cache entry
    # is ``(mutation_key, value)``; see :meth:`_mutation_key`.  Class
    # attributes so unpickled instances start clean.
    _groups_cache = None
    _eop_cache = None
    _compiled_cache = None

    def __init__(self, name):
        self.name = name
        self.global_states = []  # declared order; first is the initial state
        self.specific_var = None  # (name, metatype) or None
        self.specific_states = []
        self.transitions = []  # declared order
        #: Extra options the engine consults (e.g. disabling auto-kill, §8).
        self.options = {}
        #: Severity class used for grouping/ranking unless an error says
        #: otherwise ('SECURITY' | 'ERROR' | 'MINOR' | None).
        self.default_severity = None

    # -- declaration API ------------------------------------------------------

    def state_var(self, name, metatype):
        """Declare a variable-specific state variable (``state decl``).

        §3.1: "While the state tuples in this paper have only two
        components, the actual implementation of metal allows the
        extension to define tuples with additional components" -- multiple
        ``state decl``s are allowed; each declares an independent family
        of instances.
        """
        if not isinstance(metatype, MetaType):
            from repro.metal.metatypes import ConcreteType

            metatype = ConcreteType(metatype)
        if not hasattr(self, "_specific_vars"):
            self._specific_vars = {}
        if name in self._specific_vars:
            raise ValueError(
                "extension %r already declares state variable %r"
                % (self.name, name)
            )
        self._specific_vars[name] = metatype
        if self.specific_var is None:
            self.specific_var = (name, metatype)
        return name

    @property
    def specific_vars(self):
        """All declared state variables: {name: metatype}."""
        return dict(getattr(self, "_specific_vars", {}))

    @property
    def specific_var_name(self):
        return self.specific_var[0] if self.specific_var else None

    def var_metatype(self, name):
        return getattr(self, "_specific_vars", {}).get(name)

    @property
    def hole_types(self):
        """Hole typing environment for pattern compilation."""
        holes = dict(getattr(self, "_specific_vars", {}))
        holes.update(self.extra_holes())
        return holes

    def extra_holes(self):
        """Additional hole variables (``decl`` without ``state``)."""
        return getattr(self, "_extra_holes", {})

    def decl(self, name, metatype):
        """Declare a plain hole variable (non-state)."""
        if not hasattr(self, "_extra_holes"):
            self._extra_holes = {}
        self._extra_holes[name] = metatype
        return name

    def parse_state(self, text):
        """Parse ``start`` or ``v.freed`` into a StateRef."""
        if "." in text:
            var, value = text.split(".", 1)
            if var not in getattr(self, "_specific_vars", {}):
                raise ValueError("unknown state variable %r in %r" % (var, text))
            return StateRef(var, value)
        return StateRef(GLOBAL, text)

    def transition(self, source, pattern, to=None, action=None,
                   true_to=None, false_to=None):
        """Add a transition.

        ``source``/``to`` accept ``"start"`` / ``"v.freed"`` strings or
        StateRefs.  ``pattern`` accepts a :class:`Pattern` or base-pattern
        text like ``"{ kfree(v) }"``.  Path-specific transitions pass
        ``true_to``/``false_to`` instead of ``to``.
        """
        source = self._as_ref(source)
        if isinstance(pattern, str):
            pattern = self._compile_pattern_text(pattern)
        if true_to is not None or false_to is not None:
            target = PathSplit(self._as_ref(true_to), self._as_ref(false_to))
        else:
            target = self._as_ref(to) if to is not None else None
        rule = Transition(source, pattern, target, action)
        self.transitions.append(rule)
        self._register_states(rule)
        return rule

    def _as_ref(self, ref):
        if ref is None:
            return None
        if isinstance(ref, StateRef):
            return ref
        return self.parse_state(ref)

    def _compile_pattern_text(self, text):
        text = text.strip()
        if text == "$end_of_path$" or text == "$end of path$":
            return EndOfPath()
        if text.startswith("{") and text.endswith("}"):
            text = text[1:-1]
        return compile_pattern(text, self.hole_types)

    def _register_states(self, rule):
        def register(ref):
            if ref is None or not isinstance(ref, StateRef):
                return
            if ref.value == STOP:
                return
            pool = self.global_states if ref.is_global else self.specific_states
            if ref.value not in pool:
                pool.append(ref.value)

        register(rule.source)
        if isinstance(rule.target, PathSplit):
            register(rule.target.true_state)
            register(rule.target.false_state)
        else:
            register(rule.target)

    # -- queries used by the engine --------------------------------------------------

    @property
    def initial_global(self):
        """The initial global state: the first state in the extension text
        (§5.3)."""
        if self.global_states:
            return self.global_states[0]
        return "start"

    def _mutation_key(self):
        """Cheap fingerprint of the transition list used to invalidate
        the derived-structure caches.  Appends, inserts and removals all
        change it; replacing an element *in place* at the same length
        does not (no seed checker does that -- they go through
        :meth:`transition` or ``transitions.insert``)."""
        transitions = self.transitions
        return (id(transitions), len(transitions))

    def _grouping(self):
        key = self._mutation_key()
        cache = self._groups_cache
        if cache is None or cache[0] != key:
            groups = {}
            for t in self.transitions:
                groups.setdefault((t.source.var, t.source.value), []).append(t)
            cache = (key, {k: tuple(v) for k, v in groups.items()})
            self._groups_cache = cache
        return cache[1]

    def transitions_from(self, ref):
        return self._grouping().get((ref.var, ref.value), ())

    def global_transitions(self, value):
        return self._grouping().get((GLOBAL, value), ())

    def specific_transitions(self, value, var_name=None):
        """Transitions out of ``<var>.<value>``; ``var_name`` defaults to
        the first declared state variable (the common one-variable case)."""
        if var_name is None:
            if self.specific_var is None:
                return ()
            var_name = self.specific_var[0]
        return self._grouping().get((var_name, value), ())

    def uses_end_of_path(self):
        key = self._mutation_key()
        cache = self._eop_cache
        if cache is None or cache[0] != key:
            cache = (
                key,
                any(t.pattern.mentions_end_of_path() for t in self.transitions),
            )
            self._eop_cache = cache
        return cache[1]

    def compiled(self):
        """The table-driven matcher set for this extension (lazily built
        by :mod:`repro.metal.compile`, invalidated when the transition
        list changes)."""
        key = self._mutation_key()
        cache = self._compiled_cache
        if cache is None or cache[0] != key:
            from repro.metal.compile import CompiledExtension

            cache = (key, CompiledExtension(self))
            self._compiled_cache = cache
        return cache[1]

    def __getstate__(self):
        """Derived caches hold compiled closures; never pickle them."""
        state = dict(self.__dict__)
        for attr in ("_groups_cache", "_eop_cache", "_compiled_cache"):
            state.pop(attr, None)
        return state

    def __repr__(self):
        return "<Extension %s: %d transitions>" % (self.name, len(self.transitions))
