"""Persistent-triage tests: the one predicate, the one file format,
backend sharing, and suppression surviving edits.

The contract (docs/REPORTS.md): every suppression decision in the
system flows through :class:`TriageStore.match` -- by stable hash (the
precise spelling), by rule (§9 "suppress them all"), or by §8 history
key -- with hash > rule > history precision; the file format and the
shared-backend document are the same JSON shape (legacy bare-list
HistoryDatabase files still load); and a hash-keyed suppression keeps
matching after the tree drifts, a daemon restarts, or the state round-
trips through a RemoteStore.
"""

import json
import os

import pytest

from repro.driver.cli import main
from repro.driver.store import LocalStore, RemoteStore
from repro.driver.store_server import StoreServer
from repro.engine.history import HistoryDatabase
from repro.reports.hashing import assign_report_hashes
from repro.reports.model import Report
from repro.reports.triage import (
    TriageEntry,
    TriageError,
    TriageStore,
)

CHECKER_ARGS = ["--checker", "free", "--checker", "lock"]

PAD = "int pad_drift_1;\nint pad_drift_2;\n"

TREE = {
    "mod.c": (
        "int stable_bug(int *a) { kfree(a); return *a; }\n"
        "\n"
        "int target_bug(int *b) { kfree(b); return *b; }\n"
    ),
}


def write_tree(dirpath, files):
    for name, text in files.items():
        with open(os.path.join(str(dirpath), name), "w") as handle:
            handle.write(text)


def c_paths(dirpath):
    return sorted(
        os.path.join(str(dirpath), name)
        for name in os.listdir(str(dirpath))
        if name.endswith(".c")
    )


def run_cli(src, capsys, *extra):
    code = main(CHECKER_ARGS + ["-I", str(src)] + list(extra)
                + c_paths(src))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def report_json(src, capsys, *extra):
    __, out, __ = run_cli(src, capsys, "--report-json", "-", *extra)
    docs, __ = json.JSONDecoder().raw_decode(out[out.index("["):])
    return docs


def sample_reports():
    reports = [
        Report("free_checker", "using a after free!", function="f",
               variable="a", rule_id="kfree"),
        Report("free_checker", "using b after free!", function="g",
               variable="b", rule_id="vfree"),
        Report("lock_checker", "double lock!", function="h",
               variable="l", rule_id="lock"),
    ]
    return assign_report_hashes(reports)


class TestEntryValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(TriageError):
            TriageEntry("line", 12)

    def test_unknown_verdict_rejected(self):
        with pytest.raises(TriageError):
            TriageEntry("rule", "kfree", verdict="maybe")

    def test_history_key_must_be_five_fields(self):
        with pytest.raises(TriageError):
            TriageEntry("history", ("checker", "file"))

    def test_from_dict_missing_field(self):
        with pytest.raises(TriageError):
            TriageEntry.from_dict({"kind": "rule"})


class TestPredicate:
    def test_hash_matches_exactly_one_report(self):
        reports = sample_reports()
        store = TriageStore()
        store.suppress_hash(reports[1].report_hash)
        kept, suppressed = store.apply(reports)
        assert [r.variable for r in suppressed] == ["b"]
        assert [r.variable for r in kept] == ["a", "l"]

    def test_rule_matches_the_group(self):
        reports = sample_reports()
        store = TriageStore()
        store.suppress_rule("kfree")
        assert store.is_suppressed(reports[0])
        assert not store.is_suppressed(reports[1])

    def test_history_key_matches(self):
        reports = sample_reports()
        store = TriageStore()
        store.suppress_history(reports[2].history_key())
        assert store.is_suppressed(reports[2])
        assert not store.is_suppressed(reports[0])

    def test_precision_hash_beats_rule_beats_history(self):
        reports = sample_reports()
        report = reports[0]
        store = TriageStore()
        store.suppress_history(report.history_key())
        assert store.match(report).kind == "history"
        store.suppress_rule(report.rule_id)
        assert store.match(report).kind == "rule"
        store.suppress_hash(report.report_hash)
        assert store.match(report).kind == "hash"

    def test_match_dict_agrees_with_match(self):
        reports = sample_reports()
        store = TriageStore()
        store.suppress_rule("vfree")
        store.suppress_hash(reports[2].report_hash)
        for report in reports:
            entry = store.match(report)
            entry_d = store.match_dict(report.to_dict())
            assert (entry is None) == (entry_d is None)
            if entry is not None:
                assert entry.identity() == entry_d.identity()

    def test_confirmed_keeps_report_with_severity_override(self):
        reports = sample_reports()
        store = TriageStore()
        store.suppress_hash(reports[0].report_hash, verdict="confirmed",
                            severity="SECURITY")
        kept, suppressed = store.apply(reports)
        assert suppressed == []
        assert kept[0].severity == "SECURITY"
        assert kept[0].annotations["triage"]["verdict"] == "confirmed"

    def test_same_target_decision_replaces(self):
        store = TriageStore()
        store.suppress_rule("kfree", reason="first")
        store.suppress_rule("kfree", reason="second")
        assert len(store) == 1
        assert store.entries[0].reason == "second"


class TestFileFormat:
    def test_save_load_round_trip(self, tmp_path):
        store = TriageStore()
        store.suppress_hash("a" * 40, reason="flaky", author="alice")
        store.suppress_rule("kfree", verdict="intentional")
        store.suppress_history(("c", "f.c", "fn", "v", "msg"))
        path = str(tmp_path / "triage.json")
        store.save(path)
        loaded = TriageStore.load(path)
        assert sorted(e.identity() for e in loaded) == \
            sorted(e.identity() for e in store)
        assert loaded.match_dict({"hash": "a" * 40}).reason == "flaky"

    def test_legacy_history_list_still_loads(self, tmp_path):
        # Pre-refactor HistoryDatabase files: a bare list of §8 keys.
        path = str(tmp_path / "history.json")
        key = ["free_checker", "mod.c", "f", "a", "using a after free!"]
        with open(path, "w") as handle:
            json.dump([key], handle)
        store = TriageStore.load(path)
        assert len(store) == 1
        assert store.entries[0].kind == "history"
        assert store.entries[0].key == tuple(key)

    def test_history_database_facade_interoperates(self, tmp_path):
        reports = sample_reports()
        db = HistoryDatabase()
        db.suppress(reports[0])
        path = str(tmp_path / "db.json")
        db.save(path)
        # The façade writes the one format; TriageStore reads it back.
        store = TriageStore.load(path)
        assert store.is_suppressed(reports[0])
        assert HistoryDatabase.load(path).is_suppressed(reports[0])

    def test_load_path_missing_is_empty(self, tmp_path):
        assert len(TriageStore.load_path(str(tmp_path / "absent"))) == 0


class TestBackendRoundTrip:
    def test_local_backend(self, tmp_path):
        backend = LocalStore(str(tmp_path / "store"))
        store = TriageStore()
        store.suppress_rule("kfree", reason="noisy")
        store.save_backend(backend)
        loaded = TriageStore.load_backend(backend)
        assert len(loaded) == 1
        assert loaded.entries[0].reason == "noisy"

    def test_empty_backend_is_empty_store(self, tmp_path):
        backend = LocalStore(str(tmp_path / "store"))
        assert len(TriageStore.load_backend(backend)) == 0

    def test_corrupt_backend_document_raises(self, tmp_path):
        backend = LocalStore(str(tmp_path / "store"))
        backend.put_many("run", {"triage": b"not json"})
        with pytest.raises(TriageError):
            TriageStore.load_backend(backend)

    def test_remote_store_round_trip(self, tmp_path):
        # The sharing path: one writer, a different client, one server.
        root = tmp_path / "store-root"
        root.mkdir()
        server = StoreServer(str(root))
        server.start()
        try:
            writer = TriageStore()
            writer.suppress_hash("b" * 40, verdict="intentional",
                                 reason="known-benign")
            writer.save_backend(RemoteStore(server.url))
            loaded = TriageStore.load_backend(RemoteStore(server.url))
            assert loaded.match_dict({"hash": "b" * 40}).reason == \
                "known-benign"
        finally:
            server.stop()

    def test_merge_other_wins(self):
        ours = TriageStore()
        ours.suppress_rule("kfree", reason="ours")
        theirs = TriageStore()
        theirs.suppress_rule("kfree", reason="theirs")
        theirs.suppress_rule("vfree")
        ours.merge(theirs)
        assert len(ours) == 2
        assert ours._entries[("rule", "kfree")].reason == "theirs"


class TestTriageCLI:
    def test_record_and_suppress_via_file(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        triage = str(tmp_path / "triage.json")
        docs = report_json(src, capsys)
        target = next(d for d in docs if d["function"] == "target_bug")

        # Record mode: no input files, just the decision.
        code = main(["--triage-suppress", target["hash"],
                     "--triage", triage, "--triage-reason", "wontfix"])
        assert code == 0
        assert "triaged hash" in capsys.readouterr().err
        stored = TriageStore.load(triage)
        assert stored.entries[0].reason == "wontfix"
        assert stored.entries[0].author

        code, out, __ = run_cli(src, capsys, "--triage", triage)
        assert "target_bug" not in out
        assert "stable_bug" in out

    def test_rule_key_spelling(self, tmp_path, capsys):
        # "rule:ID" records a rule-kind entry (bare tokens are hashes).
        triage = str(tmp_path / "triage.json")
        main(["--triage-suppress", "rule:kfree", "--triage", triage])
        capsys.readouterr()
        stored = TriageStore.load(triage)
        assert [e.identity() for e in stored] == [("rule", "kfree")]
        kept = stored.filter(sample_reports())
        assert [r.variable for r in kept] == ["b", "l"]

    def test_suppress_and_rerun_in_one_invocation(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        triage = str(tmp_path / "triage.json")
        docs = report_json(src, capsys)
        target = next(d for d in docs if d["function"] == "target_bug")
        # --triage-suppress HASH with input files records the entry and
        # lets it suppress in the same run.
        code, out, __ = run_cli(src, capsys, "--triage", triage,
                                "--triage-suppress", target["hash"])
        assert "target_bug" not in out
        assert "stable_bug" in out

    def test_hash_suppression_survives_line_drift(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        triage = str(tmp_path / "triage.json")
        docs = report_json(src, capsys)
        target = next(d for d in docs if d["function"] == "target_bug")
        main(["--triage-suppress", target["hash"], "--triage", triage])
        capsys.readouterr()

        # Drift every line; the hash-keyed decision keeps matching.
        (src / "mod.c").write_text(PAD + (src / "mod.c").read_text())
        code, out, __ = run_cli(src, capsys, "--triage", triage)
        assert "target_bug" not in out
        assert "stable_bug" in out

    def test_shared_store_triage_applies_without_flag(
        self, tmp_path, capsys
    ):
        # Triage recorded into the shared backend suppresses every
        # later run over that backend -- no --triage flag needed.
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        cache = str(tmp_path / "cache")
        docs = report_json(src, capsys)
        target = next(d for d in docs if d["function"] == "target_bug")
        code = main(["--triage-suppress", target["hash"],
                     "--cache-dir", cache])
        assert code == 0
        capsys.readouterr()
        code, out, __ = run_cli(src, capsys, "--cache-dir", cache)
        assert "target_bug" not in out
        assert "stable_bug" in out

    def test_store_url_round_trip(self, tmp_path, capsys):
        # The ISSUE acceptance bar: triage survives a --store-url
        # round-trip (recorded by one client, applied by another).
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        root = tmp_path / "store-root"
        root.mkdir()
        server = StoreServer(str(root))
        server.start()
        try:
            docs = report_json(src, capsys)
            target = next(d for d in docs if d["function"] == "target_bug")
            code = main(["--triage-suppress", target["hash"],
                         "--store-url", server.url])
            assert code == 0
            capsys.readouterr()
            code, out, __ = run_cli(src, capsys, "--store-url", server.url)
            assert "target_bug" not in out
            assert "stable_bug" in out
        finally:
            server.stop()

    def test_severity_rank_consolidation_unchanged(self, tmp_path, capsys):
        # The consolidated suppress_rule path must not disturb ranked
        # output when no triage exists.
        src = tmp_path / "src"
        src.mkdir()
        write_tree(src, TREE)
        __, plain, __ = run_cli(src, capsys)
        __, ranked, __ = run_cli(src, capsys, "--rank", "severity")
        assert plain == ranked
