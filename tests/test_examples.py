"""The examples must stay runnable: each one is executed as a script."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize(
    "script, expected",
    [
        ("quickstart.py", "matches the paper's Section 2.2 walkthrough."),
        ("rule_inference.py", "found the deviant functions"),
        ("custom_checker.py", "both versions agree"),
        ("kernel_lock_audit.py", "score: found"),
        ("toy_kernel_audit.py", "clean audit: every seeded bug found"),
    ],
)
def test_example_runs(script, expected):
    proc = run_example(script)
    assert proc.returncode == 0, proc.stderr
    assert expected in proc.stdout
