"""Figure 5: the supergraph with block and suffix summaries for Fig. 2.

Regenerates the per-block summary rows the figure prints and asserts the
specific edges the figure and its caption call out:

* block 2's add edge  (start, v:p->unknown) --> (start, v:p->freed);
* block 7's kill edge (start, v:p->freed)  --> (start, v:p->stop);
* contrived's function summary = {p identity-freed, w add-freed};
* suffix summaries never mention q (a local) and never end in stop;
* kfree calls are not callsites (the extension matches them).
"""

from conftest import fig2_code  # noqa: F401

from repro.cfront.parser import parse
from repro.cfg import CallGraph, build_supergraph
from repro.checkers import free_checker
from repro.engine.analysis import Analysis


def run_and_collect(fig2_code):
    unit = parse(fig2_code, "fig2.c")
    analysis = Analysis([unit])
    table = analysis.run_one(free_checker())
    return analysis, table


def test_fig5_summaries(benchmark, fig2_code):
    analysis, table = benchmark(run_and_collect, fig2_code)

    print("\nSupergraph summaries for Figure 2 (block summary / suffix "
          "summary per block):")
    all_block_rows = []
    all_suffix_rows = []
    for name in ("contrived_caller", "contrived"):
        cfg = analysis._cfg(name)
        print("-- %s --" % name)
        for block in cfg.blocks:
            summary = table.get(block)
            block_rows = sorted(
                e.describe() for e in summary.edges if not e.is_global_only
            )
            suffix_rows = sorted(
                e.describe() for e in summary.suffix if not e.is_global_only
            )
            print("  B%-2d %s" % (block.index, "; ".join(block_rows) or "(global only)"))
            print("       sfx: %s" % ("; ".join(suffix_rows) or "(none)"))
            all_block_rows.extend(block_rows)
            all_suffix_rows.extend(suffix_rows)

    # The figure's add edge in the caller's kfree block.
    assert (
        "(start,v:p->$unknown) --> (start,v:p->freed)" in all_block_rows
    )
    # Block 7's kill of p (p = 0).
    assert "(start,v:p->freed) --> (start,v:p->stop)" in all_block_rows
    # w's add edge inside contrived.
    assert "(start,v:w->$unknown) --> (start,v:w->freed)" in all_block_rows
    # Caption: suffix summaries omit q and stop-ending edges.
    assert not any("v:q->" in row for row in all_suffix_rows)
    assert not any("stop" in row for row in all_suffix_rows)


def test_fig5_function_summary(benchmark, fig2_code):
    analysis, table = benchmark(run_and_collect, fig2_code)
    entry = analysis._cfg("contrived").entry
    rows = sorted(
        e.describe() for e in table.get(entry).suffix if not e.is_global_only
    )
    print("\nfunction summary of contrived (= entry suffix summary):")
    for row in rows:
        print("  " + row)
    assert "(start,v:p->freed) --> (start,v:p->freed)" in rows
    assert "(start,v:w->$unknown) --> (start,v:w->freed)" in rows
    assert len(rows) == 2  # and nothing else (no q, no stop)


def test_fig5_kfree_not_a_callsite(benchmark, fig2_code):
    # Caption: "The analysis does not follow calls to kfree because the
    # extension matches these calls. Thus, they are not considered
    # callsites in the supergraph construction."
    def build():
        unit = parse(fig2_code, "fig2.c")
        callgraph = CallGraph.from_units([unit])
        return build_supergraph(
            callgraph,
            matched_call_filter=lambda call: call.callee_name() == "kfree",
        )

    supergraph = benchmark(build)
    names = [site.callee_name for site in supergraph.callsites]
    print("\ncallsites in the supergraph: %s" % names)
    assert names == ["contrived"]
