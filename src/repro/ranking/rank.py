"""The one ranking entry point.

``driver/cli.py`` and ``driver/daemon.py`` used to branch over the
ranking modes separately; :func:`rank_reports` consolidates them and
makes the ranking stage *annotate* the structured reports it orders --
``report.annotations["rank"]`` is the 1-based position in the ranked
output and ``annotations["rank_class"]`` the class the report ranked in
(§9 partitions) -- so any renderer (text, JSON, the report server) can
show ranking without re-deriving it.  The returned order is exactly the
pre-refactor order per mode; annotations never change rendered text.
"""

from repro.ranking.generic import generic_rank
from repro.ranking.severity import stratify
from repro.ranking.statistical import rank_by_rule_reliability

RANK_MODES = ("generic", "severity", "statistical", "none")


def _rank_class(report, mode):
    if mode == "severity":
        return report.severity or "unannotated"
    if mode == "generic":
        scope = "local" if report.is_local else "interprocedural"
        return scope + ("+synonyms" if report.synonym_chain else "")
    if mode == "statistical":
        return str(report.rule_id)
    return None


def rank_reports(reports, mode="severity", log=None):
    """Order ``reports`` by ``mode`` and annotate each with its rank.

    ``log`` is the ErrorLog carrying example/counterexample counters;
    statistical ranking without one degrades to the incoming order (the
    historical CLI behavior when no engine result is at hand).
    """
    if mode == "generic":
        ranked = generic_rank(reports)
    elif mode == "severity":
        ranked = stratify(reports)
    elif mode == "statistical" and log is not None:
        ranked = rank_by_rule_reliability(reports, log)
    else:
        ranked = list(reports)
    for position, report in enumerate(ranked, 1):
        report.annotations["rank"] = position
        rank_class = _rank_class(report, mode)
        if rank_class is not None:
            report.annotations["rank_class"] = rank_class
    return ranked
