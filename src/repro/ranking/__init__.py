"""Error ranking (§9): generic, severity, statistical, and code ranking."""

from repro.ranking.generic import generic_rank, generic_sort_key
from repro.ranking.rank import RANK_MODES, rank_reports
from repro.ranking.severity import severity_class, stratify
from repro.ranking.statistical import (
    rank_by_rule_reliability,
    rank_functions_by_code,
    z_statistic,
)

__all__ = [
    "generic_rank",
    "generic_sort_key",
    "severity_class",
    "stratify",
    "z_statistic",
    "rank_by_rule_reliability",
    "rank_functions_by_code",
    "rank_reports",
    "RANK_MODES",
]
