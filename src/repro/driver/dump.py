"""Renderers over analysis artifacts: ranked reports, CFGs, call
graphs, and Figure-5-style summaries.

Report output is rendered here from the structured model
(:mod:`repro.reports.model`) -- the CLI and the daemon both call
:func:`render_reports`, which is the byte-identity surface (it must
reproduce the classic ranked text exactly); :func:`reports_to_json` /
:func:`load_report_json` are the lossless structured renderer pair
(``load → render == original text``).

The rest is the debugging surface for checker writers, exposed on the
CLI as ``xgcc --dump-cfg`` / ``--dump-callgraph`` / ``--dump-summaries``
(the latter needs a checker to run first, since summaries are an
analysis artifact).
"""

import json

from repro.cfront import astnodes as ast
from repro.cfront.unparse import unparse
from repro.cfg.blocks import ReturnMarker
from repro.reports.model import Report


def render_reports(reports, trace=False):
    """The ranked report lines, one (or one block, with ``trace``) per
    report -- byte-identical to the historical CLI output."""
    return "".join(
        report.render_text(trace=trace) + "\n" for report in reports
    )


def reports_to_json(reports, indent=2):
    """The structured report document (``--report-json``)."""
    return json.dumps(
        [report.to_dict() for report in reports], indent=indent
    )


def load_report_json(text):
    """Reports back from :func:`reports_to_json` output (the round-trip:
    rendering the loaded reports reproduces the original text)."""
    return [Report.from_dict(doc) for doc in json.loads(text)]


def report_legacy_json(report):
    """The pre-refactor ``--format json`` entry shape, kept stable for
    existing consumers (the structured model is ``--report-json``)."""
    return {
        "checker": report.checker,
        "message": report.message,
        "file": report.location.filename,
        "line": report.location.line,
        "column": report.location.column,
        "function": report.function,
        "severity": report.severity,
        "rule": report.rule_id,
        "call_chain": report.call_chain,
        "trace": [
            {"event": event, "location": str(location) if location else None}
            for event, location in report.trace
        ],
    }


def _item_text(item):
    if isinstance(item, ReturnMarker):
        if item.expr is None:
            return "return"
        return "return %s" % unparse(item.expr)
    if isinstance(item, ast.VarDecl):
        return unparse(item).strip()
    return unparse(item)


def _edge_text(edge):
    label = edge.label
    if label is None:
        text = ""
    elif label is True or label is False:
        text = "T:" if label else "F:"
    elif isinstance(label, tuple):
        text = "case %s:" % (label[1],)
    else:
        text = "%s:" % label
    return "%sB%d" % (text, edge.target.index)


def dump_cfg(cfg):
    """One function's CFG as indented text."""
    lines = ["CFG %s (%d blocks)" % (cfg.name, len(cfg.blocks))]
    for block in cfg.blocks:
        tags = []
        if block is cfg.entry:
            tags.append("entry")
        if block.is_exit:
            tags.append("exit")
        if block.is_call_block:
            tags.append("call")
        if block.havoc_vars:
            tags.append("loop-head havoc={%s}" % ",".join(sorted(block.havoc_vars)))
        header = "  B%d%s" % (block.index, (" [%s]" % ", ".join(tags)) if tags else "")
        lines.append(header)
        for item in block.items:
            lines.append("      %s" % _item_text(item))
        if block.edges:
            lines.append("      -> %s" % "  ".join(_edge_text(e) for e in block.edges))
    return "\n".join(lines)


def dump_cfg_dot(cfg):
    """One function's CFG in Graphviz DOT syntax."""
    lines = ["digraph \"%s\" {" % cfg.name, "  node [shape=box, fontname=monospace];"]
    for block in cfg.blocks:
        body = "\\l".join(_item_text(i).replace('"', '\\"') for i in block.items)
        shape = ""
        if block is cfg.entry:
            shape = ", color=green"
        elif block.is_exit:
            shape = ", color=red"
        lines.append('  B%d [label="B%d\\l%s\\l"%s];' % (
            block.index, block.index, body, shape))
    for block in cfg.blocks:
        for edge in block.edges:
            label = ""
            if edge.label is True:
                label = ' [label="T"]'
            elif edge.label is False:
                label = ' [label="F"]'
            elif isinstance(edge.label, tuple):
                label = ' [label="case %s"]' % (edge.label[1],)
            elif edge.label == "default":
                label = ' [label="default"]'
            lines.append("  B%d -> B%d%s;" % (block.index, edge.target.index, label))
    lines.append("}")
    return "\n".join(lines)


def dump_callgraph(callgraph):
    """The call graph with roots marked."""
    roots = set(callgraph.roots())
    lines = ["callgraph (%d functions, %d roots)" % (len(callgraph), len(roots))]
    for name in sorted(callgraph.functions):
        marker = "*" if name in roots else " "
        callees = sorted(
            c for c in callgraph.callees.get(name, ()) if c in callgraph.functions
        )
        external = sorted(
            c for c in callgraph.callees.get(name, ()) if c not in callgraph.functions
        )
        line = " %s %s -> %s" % (marker, name, ", ".join(callees) or "(leaf)")
        if external:
            line += "   [external: %s]" % ", ".join(external)
        lines.append(line)
    return "\n".join(lines)


def dump_summaries(analysis, table, function_names=None):
    """Figure-5-style per-block summary rows after an analysis run."""
    lines = []
    names = function_names or sorted(analysis.callgraph.functions)
    for name in names:
        cfg = analysis._cfg(name)
        lines.append("== %s ==" % name)
        for block in cfg.blocks:
            summary = table.get(block)
            block_rows = sorted(
                e.describe() for e in summary.edges if not e.is_global_only
            )
            suffix_rows = sorted(
                e.describe() for e in summary.suffix if not e.is_global_only
            )
            lines.append(
                "  B%-3d %s" % (block.index, "; ".join(block_rows) or "(none)")
            )
            lines.append("       sfx: %s" % ("; ".join(suffix_rows) or "(none)"))
    return "\n".join(lines)
