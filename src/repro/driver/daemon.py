"""``xgccd``: the long-lived analysis daemon behind ``xgcc --watch``.

Every ``xgcc --incremental`` invocation pays process startup, manifest
load, and a pass-1 probe (preprocess + cache lookup) for *every* file,
even when the dirty cone is one function.  The daemon converts that
per-run tax into per-process state: one process keeps the
:class:`repro.driver.session.IncrementalSession` (manifest and summary
frames pinned in memory), every parsed translation unit, and each
file's include dependencies warm across edit bursts, so a warm
re-analysis costs the dirty cone's analysis time alone — the
CodeChecker-style always-on deployment the ROADMAP names.

Architecture (single-threaded, crash-containing):

- A :class:`repro.driver.watch.TreeWatcher` detects edits by content
  fingerprint (SHA-256 of bytes — mtimes are never trusted), polled on
  the serve loop's idle tick and again on every ``analyze`` request.
- Changed files dirty themselves plus every pinned unit whose recorded
  include set intersects them; only those re-run pass 1.  Unchanged
  units are adopted from memory (:meth:`repro.driver.project.Project.
  adopt_unit`) — no preprocess, no parse, no cache probe.  A *new*
  non-``.c`` file conservatively dirties everything (it can change
  include resolution).
- Pass 2 goes through the pinned incremental session: dirty-cone
  scheduling, delta replay, byte-identical ranked reports.
- Requests arrive over a local UNIX stream socket, one JSON object per
  line: ``{"op": "analyze"}``, ``stats``, ``gc``, ``notify``, ``ping``,
  ``shutdown``.  Every failure — watcher stall, request-decode error,
  mid-burst analysis crash — degrades into an error *response* plus a
  stats record; the serve loop never wedges and never dies with a
  request.

The daemon's ``gc`` op passes its pinned frame keys and every tier-1
key it has seen as extra live sets, so on-disk cache GC stays coherent
with in-memory warm state (nothing the daemon still replays is swept).
"""

import contextlib
import errno
import json
import os
import socket
import threading
import time

from repro import faults
from repro.driver import cache as astcache
from repro.driver.stats import DriverStats
from repro.driver.watch import TreeWatcher, WatcherError

#: Bump when the request/response shape changes; every response carries
#: it so clients can detect skew.
PROTOCOL_VERSION = 1

#: Ops the daemon answers.
DAEMON_OPS = ("analyze", "stats", "gc", "notify", "ping", "shutdown")


class DaemonError(Exception):
    """Client-side failure talking to a daemon (no socket, bad reply)."""


class _PinnedUnit:
    """One file's warm pass-1 state: content digest at parse time, the
    compiled unit, and every file the preprocessor read to build it."""

    __slots__ = ("digest", "compiled", "deps")

    def __init__(self, digest, compiled, deps):
        self.digest = digest
        self.compiled = compiled
        self.deps = frozenset(deps)


class _RecordingReader:
    """A ``Project.file_reader`` wrapper recording every successful read
    (the compile's include-dependency set)."""

    def __init__(self, inner=None):
        self.inner = inner
        self.seen = set()

    def __call__(self, path):
        if self.inner is not None:
            text = self.inner(path)
        else:
            with open(path, "r") as handle:
                text = handle.read()
        self.seen.add(os.path.abspath(path))
        return text


class XgccDaemon:
    """A serving wrapper around one pinned analysis configuration.

    ``watch_roots`` are directories watched (and analyzed: every ``.c``
    under them); ``files`` adds explicit paths.  ``extension_factory``
    rebuilds the extension list per analysis (extensions are stateful).
    ``session`` is the pinned :class:`IncrementalSession` — construct it
    with ``pin_warm_state=True``.  The daemon object owns a cumulative
    :class:`DriverStats`; the ``stats`` op serves it.
    """

    def __init__(self, watch_roots, extension_factory, session,
                 socket_path, files=(), include_paths=(), defines=None,
                 cache_dir=None, options=None, rank="severity", jobs=1,
                 worker_timeout=None, poll_interval=0.5, stats=None,
                 file_reader=None, store_url=None, refine=None,
                 run_keep=None):
        self.watch_roots = [os.path.abspath(p) for p in watch_roots]
        self.extension_factory = extension_factory
        self.session = session
        self.socket_path = socket_path
        self.files = [os.path.abspath(p) for p in files]
        self.include_paths = list(include_paths)
        self.defines = dict(defines or {})
        self.cache_dir = cache_dir
        #: Shared artifact-store URL; the session's backend (local,
        #: remote, or tiered) is reused for the daemon's own projects so
        #: all warm state rides one connection and one overlay.
        self.store_url = store_url
        self.options = options
        self.rank = rank
        #: ``--refine`` mode (None / "annotate" / "demote" / "drop");
        #: verdicts reuse the store backend's cache tier, so warm
        #: daemon re-analyses replay them instead of re-evaluating.
        self.refine = refine
        #: ``--prune-runs`` bound re-applied after every recorded run
        #: (None = unbounded history).
        self.run_keep = run_keep
        self.jobs = jobs
        self.worker_timeout = worker_timeout
        self.poll_interval = poll_interval
        self.stats = stats or DriverStats()
        self.file_reader = file_reader
        self.watcher = TreeWatcher(
            roots=self.watch_roots, files=self.files, stats=self.stats
        )
        #: path -> _PinnedUnit: warm pass-1 state across bursts.
        self._units = {}
        #: Content-changed paths not yet folded into an analysis.
        self._dirty = set()
        #: Cached response of the last completed analysis (served to
        #: ``analyze`` when nothing changed since).
        self._last_response = None
        #: Every tier-1 key any run probed: extra live set for ``gc``.
        self._ast_keys_seen = set()
        self._running = False
        #: The last completed analysis' ranked structured reports (the
        #: HTTP report server renders these without re-analyzing).
        self._last_reports = []
        #: Serializes analysis/state access between the UNIX-socket serve
        #: loop and the threaded HTTP report server.
        self.lock = threading.RLock()

    # -- shared report state -----------------------------------------------

    def backend(self):
        return getattr(self.session, "backend", None)

    def _load_triage(self):
        """The shared triage state, or None when it cannot be read (a
        bad document degrades to no suppression, loudly)."""
        from repro.reports.triage import TriageError, TriageStore

        backend = self.backend()
        if backend is None:
            return None
        try:
            return TriageStore.load_backend(backend)
        except TriageError as err:
            self.stats.add("triage_load_errors")
            self.stats.record_degradation("daemon", str(err))
            return None

    def invalidate(self):
        """Drop the warm response cache (triage changed: the same tree
        now renders differently)."""
        self._last_response = None

    # -- change tracking ---------------------------------------------------

    def _poll(self, full=True):
        """Fold a watcher poll into the dirty set; degrades on watcher
        faults (stale dirty set, loudly counted) instead of failing the
        caller."""
        try:
            with self.stats.phase("daemon_fingerprint"):
                self._dirty.update(self.watcher.poll(full=full))
            return True
        except WatcherError as err:
            self.stats.add("daemon_watch_errors")
            self.stats.record_degradation(
                "daemon", "watcher poll failed (%s); serving last-known "
                "state" % err,
            )
            return False

    def _c_files(self):
        """The sorted analysis input set as of the last poll."""
        paths = set(self.files)
        paths.update(self.watcher.state)
        return sorted(p for p in paths if p.endswith(".c"))

    def _dirty_c_files(self, c_files):
        """Which inputs must re-run pass 1 for the current dirty set."""
        known_deps = set()
        for pin in self._units.values():
            known_deps.update(pin.deps)
        if self._units:
            # (With nothing pinned yet everything is dirty anyway; the
            # conservative rule only matters against warm state.)
            for path in self._dirty:
                if not path.endswith(".c") and path not in known_deps:
                    # A new (or never-included) non-.c file can change
                    # include resolution for anyone: full pass 1.
                    self.stats.add("daemon_full_reparses")
                    return set(c_files)
        dirty = set()
        for path in c_files:
            pin = self._units.get(path)
            if (
                pin is None
                or path in self._dirty
                or pin.deps & self._dirty
                or pin.digest != self.watcher.state.get(path)
            ):
                dirty.add(path)
        return dirty

    # -- analysis ----------------------------------------------------------

    def _build_project(self, c_files, dirty):
        """Pass 1: adopt pinned units, recompile only the dirty files."""
        from repro.driver.project import Project

        project = Project(
            include_paths=self.include_paths, defines=self.defines,
            cache_dir=self.cache_dir, stats=self.stats, keep_going=True,
            store_url=self.store_url,
            store_backend=getattr(self.session, "backend", None),
        )
        for path in c_files:
            pin = self._units.get(path)
            if pin is not None and path not in dirty:
                project.adopt_unit(pin.compiled)
                continue
            reader = _RecordingReader(self.file_reader)
            project.file_reader = reader
            compiled = project.compile_files(
                [path], worker_timeout=self.worker_timeout
            )
            project.file_reader = self.file_reader
            if not compiled:
                # Pass 1 failed outright (keep_going recorded a unit
                # degradation): drop any stale pin so the next burst
                # retries instead of serving the pre-edit unit.
                self._units.pop(path, None)
                continue
            self._units[path] = _PinnedUnit(
                self.watcher.state.get(path), compiled[0], reader.seen
            )
            self.stats.add("daemon_files_reparsed")
        for path in list(self._units):
            if path not in self.watcher.state:
                del self._units[path]  # deleted input: unpin
        self._ast_keys_seen.update(project.ast_keys_used)
        return project

    def _ranked_text(self, result, project=None):
        """The exact text a cold ``xgcc`` run would print for these
        reports under the daemon's ranking mode (byte-identity is the
        differential suite's contract): shared triage applied, then the
        same refine hook, then the one ranking entry point, then the
        one text renderer."""
        from repro.driver.dump import render_reports
        from repro.ranking import rank_reports

        reports = list(result.reports)
        triage = self._load_triage()
        if triage is not None and len(triage):
            reports, __ = triage.apply(reports, stats=self.stats)
        if self.refine and project is not None:
            from repro.cfg.fingerprint import fingerprint_tables
            from repro.refine import refine_reports

            __, fingerprints = fingerprint_tables(project.callgraph)
            refine_reports(reports, project.callgraph, stats=self.stats,
                           backend=self.backend(),
                           fingerprints=fingerprints)
        reports = rank_reports(reports, self.rank, result.log)
        if self.refine:
            from repro.refine import apply_refine_mode

            reports = apply_refine_mode(reports, self.refine)
        return render_reports(reports), reports

    def _record_run(self, reports):
        """Persist the completed analysis in the run history; a failed
        record degrades (the analysis response still serves)."""
        from repro.reports.history import RunHistory, RunHistoryError

        backend = self.backend()
        if backend is None:
            return None
        try:
            return RunHistory(backend, stats=self.stats).record_run(
                reports, meta={"rank": self.rank, "source": "daemon"}
            )
        except Exception as err:
            self.stats.add("report_run_record_errors")
            self.stats.record_degradation(
                "daemon", "run not recorded: %r" % err
            )
            return None

    def _prune_runs(self):
        """Re-apply the ``run_keep`` history bound; a failed prune
        degrades (the analysis response still serves)."""
        from repro.reports.history import RunHistory

        backend = self.backend()
        if backend is None:
            return
        try:
            RunHistory(backend, stats=self.stats).prune(keep=self.run_keep)
        except Exception as err:
            self.stats.add("report_run_prune_errors")
            self.stats.record_degradation(
                "daemon", "runs not pruned: %r" % err
            )

    def analyze(self, force=False):
        """One analysis round-trip: poll, rebuild, run, rank, cache.

        Serves the cached response when nothing changed since the last
        completed analysis (``daemon_analyze_warm_hits``); ``force``
        bypasses that short-circuit.
        """
        start = time.perf_counter()
        self.stats.add("daemon_analyze_requests")
        polled = self._poll()
        if (
            self._last_response is not None
            and not self._dirty
            and polled
            and not force
        ):
            self.stats.add("daemon_analyze_warm_hits")
            response = dict(self._last_response)
            response["latency_s"] = round(time.perf_counter() - start, 6)
            response["served_from"] = "cache"
            return response

        with self.stats.phase("daemon_analyze"):
            c_files = self._c_files()
            dirty = self._dirty_c_files(c_files)
            project = self._build_project(c_files, dirty)
            extensions = self.extension_factory()
            result = project.run(
                extensions, self.options, jobs=self.jobs,
                extension_factory=self.extension_factory,
                worker_timeout=self.worker_timeout,
                incremental=self.session,
            )
        if result.degraded:
            self.stats.record_engine_degradations(result.degraded)
        text, reports = self._ranked_text(result, project)
        self._dirty = set()
        self._last_reports = reports
        run_id = self._record_run(reports)
        if run_id is not None and self.run_keep is not None:
            self._prune_runs()
        response = {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "reports": text,
            "report_count": len(reports),
            "run_id": run_id,
            "files": len(c_files),
            "files_reparsed": len(dirty),
            "roots_analyzed": result.stats.get(
                "incremental_analyzed_pairs", 0
            ),
            "roots_replayed": result.stats.get(
                "incremental_replayed_pairs", 0
            ),
            "degradations": [entry.describe() for entry in result.degraded],
            "served_from": "analysis",
        }
        self._last_response = dict(response)
        response["latency_s"] = round(time.perf_counter() - start, 6)
        self.stats.add_time(
            "daemon_request_wall", time.perf_counter() - start
        )
        return response

    # -- request handling --------------------------------------------------

    def handle_request(self, obj):
        """Dispatch one decoded request object to its op handler.

        Anything that goes wrong — including a mid-burst analysis crash
        — comes back as an ``{"ok": false, "error": ...}`` response;
        the daemon itself keeps serving.
        """
        self.stats.add("daemon_requests")
        if not isinstance(obj, dict) or obj.get("op") not in DAEMON_OPS:
            self.stats.add("daemon_request_errors")
            return {
                "ok": False, "protocol": PROTOCOL_VERSION,
                "error": "unknown request: %r" % (obj,),
            }
        op = obj["op"]
        try:
            if op == "analyze":
                return self.analyze(force=bool(obj.get("force")))
            if op == "ping":
                return {"ok": True, "protocol": PROTOCOL_VERSION,
                        "pid": os.getpid()}
            if op == "notify":
                paths = [str(p) for p in obj.get("paths") or []]
                self.watcher.notify(paths)
                self._poll(full=False)
                return {"ok": True, "protocol": PROTOCOL_VERSION,
                        "queued": len(paths)}
            if op == "stats":
                payload = self.stats.as_dict()
                payload["pinned_frames"] = len(
                    self.session.pinned_frame_keys()
                )
                payload["pinned_units"] = len(self._units)
                return {"ok": True, "protocol": PROTOCOL_VERSION,
                        "stats": payload}
            if op == "gc":
                if not self.cache_dir and not self.store_url:
                    return {"ok": False, "protocol": PROTOCOL_VERSION,
                            "error": "daemon has no cache_dir or store"}
                counters = astcache.collect_cache_garbage(
                    self.cache_dir,
                    cutoff_days=float(obj.get("days", 30.0)),
                    stats=self.stats,
                    extra_live_sum=self.session.pinned_frame_keys(),
                    extra_live_ast=sorted(self._ast_keys_seen),
                    backend=getattr(self.session, "backend", None),
                )
                return {"ok": True, "protocol": PROTOCOL_VERSION,
                        "gc": counters}
            if op == "shutdown":
                self._running = False
                return {"ok": True, "protocol": PROTOCOL_VERSION,
                        "bye": True}
        except Exception as err:  # degrade, never wedge the serve loop
            self.stats.add("daemon_analyze_errors" if op == "analyze"
                           else "daemon_request_errors")
            self.stats.record_degradation(
                "daemon", "%s request failed: %r" % (op, err)
            )
            self._last_response = None  # never serve a half-built cache
            return {"ok": False, "protocol": PROTOCOL_VERSION,
                    "error": "%s failed: %r" % (op, err)}

    def _serve_connection(self, conn):
        """One client: newline-delimited JSON requests until EOF."""
        conn.settimeout(60.0)
        reader = conn.makefile("rb")
        try:
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                spec = faults.fires("daemon.request")
                try:
                    if spec is not None:
                        raise ValueError(
                            "injected decode fault (%s)"
                            % spec.get("mode", "garbage")
                        )
                    obj = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as err:
                    self.stats.add("daemon_request_errors")
                    response = {
                        "ok": False, "protocol": PROTOCOL_VERSION,
                        "error": "undecodable request: %s" % err,
                    }
                else:
                    with self.lock:
                        response = self.handle_request(obj)
                payload = json.dumps(response) + "\n"
                conn.sendall(payload.encode("utf-8"))
                if not self._running:
                    break
        except OSError:
            # Client went away mid-exchange; nothing to clean up beyond
            # the connection itself.
            self.stats.add("daemon_connection_errors")
        finally:
            reader.close()

    def _idle_tick(self):
        """Between requests: poll, and eagerly analyze an edit burst so
        the next ``analyze`` request is a warm cache hit."""
        with self.lock:
            if not self._poll():
                return
            if self._dirty:
                self.stats.add("daemon_bursts")
                try:
                    self.analyze(force=True)
                except Exception as err:
                    self.stats.add("daemon_burst_errors")
                    self.stats.record_degradation(
                        "daemon", "eager burst analysis failed: %r" % err
                    )
                    self._last_response = None

    def serve_forever(self, warm_start=True, ready=None):
        """Bind the socket and serve until a ``shutdown`` request.

        ``warm_start`` runs one analysis before accepting requests, so
        the first client sees warm latency.  ``ready`` is an optional
        zero-argument callable invoked once the socket is listening
        (tests and supervisors use it as a barrier).
        """
        try:
            os.unlink(self.socket_path)
        except OSError as err:
            if err.errno != errno.ENOENT:
                raise
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            server.bind(self.socket_path)
            server.listen(8)
            server.settimeout(self.poll_interval)
            self._running = True
            if warm_start:
                try:
                    with self.lock:
                        self.analyze()
                except Exception as err:
                    self.stats.add("daemon_burst_errors")
                    self.stats.record_degradation(
                        "daemon", "warm-start analysis failed: %r" % err
                    )
            if ready is not None:
                ready()
            while self._running:
                try:
                    conn, __ = server.accept()
                except socket.timeout:
                    self._idle_tick()
                    continue
                except OSError:
                    break
                with contextlib.closing(conn):
                    self._serve_connection(conn)
        finally:
            server.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def stop(self):
        self._running = False


class DaemonClient:
    """A tiny line-oriented JSON client for :class:`XgccDaemon`.

    One connection per client object; reusable for many requests::

        with DaemonClient(path) as client:
            reply = client.request("analyze")
    """

    def __init__(self, socket_path, timeout=120.0):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(socket_path)
        except OSError as err:
            self._sock.close()
            raise DaemonError(
                "cannot reach daemon at %s: %s" % (socket_path, err)
            )
        self._reader = self._sock.makefile("rb")

    def request(self, op, **fields):
        """Send one request; returns the decoded response dict."""
        payload = dict(fields)
        payload["op"] = op
        try:
            self._sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            line = self._reader.readline()
        except OSError as err:
            raise DaemonError("daemon request failed: %s" % err)
        if not line:
            raise DaemonError("daemon closed the connection")
        try:
            return json.loads(line.decode("utf-8"))
        except ValueError as err:
            raise DaemonError("undecodable daemon response: %s" % err)

    def send_raw(self, data):
        """Ship raw bytes (tests: undecodable requests) and read one
        response line."""
        self._sock.sendall(data)
        line = self._reader.readline()
        if not line:
            raise DaemonError("daemon closed the connection")
        return json.loads(line.decode("utf-8"))

    def close(self):
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def wait_for_socket(socket_path, timeout=30.0, interval=0.05):
    """Block until a daemon answers ``ping`` at ``socket_path`` (or the
    timeout elapses); returns True when it did."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(socket_path):
            try:
                with DaemonClient(socket_path, timeout=5.0) as client:
                    if client.request("ping").get("ok"):
                        return True
            except (DaemonError, OSError):
                pass
        time.sleep(interval)
    return False
