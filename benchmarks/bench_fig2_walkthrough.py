"""Figure 2 / §2.2: the complete walkthrough as a benchmark.

Regenerates every observable the paper's twelve-step trace commits to:
errors at lines 12 and 17, safety of line 11, two executable paths through
``contrived`` (the other two pruned), the q synonym, the p kill, and the
union of exit instances {p, w}.
"""

from conftest import analyze, fig2_code  # noqa: F401

from repro.checkers import free_checker
from repro.engine.analysis import AnalysisOptions


def test_fig2_full_walkthrough(benchmark, fig2_code):
    def run():
        return analyze(fig2_code, free_checker(), filename="fig2.c")

    result, analysis = benchmark(run)
    by_line = {r.location.line: r.message for r in result.reports}

    print("\n§2.2 walkthrough observables:")
    print("  errors: %s" % sorted(by_line.items()))
    print("  paths completed: %d (2 through contrived + 1 caller suffix)"
          % result.stats["paths_completed"])

    assert by_line == {
        12: "using q after free!",
        17: "using w after free!",
    }
    assert result.stats["paths_completed"] == 3

    q_report = next(r for r in result.reports if r.location.line == 12)
    assert q_report.synonym_chain == 1  # step 6: transparent q instance
    assert q_report.origin_location.line == 15


def test_fig2_without_pruning_shows_line_11_fp(benchmark, fig2_code):
    def run():
        return analyze(
            fig2_code,
            free_checker(),
            options=AnalysisOptions(false_path_pruning=False),
            filename="fig2.c",
        )

    result, __ = benchmark(run)
    lines = sorted(r.location.line for r in result.reports)
    print("\nwithout §8 pruning -> errors at %s (line 11 is the documented "
          "false positive)" % lines)
    assert 11 in lines
