"""Scaling workloads for the §5.2 caching/independence benchmarks.

* :func:`diamond_function` -- n sequential if/else diamonds: 2^n paths but
  only O(n) distinct (block, state-tuple) pairs, so block-level caching
  turns exponential path enumeration into linear work.

* :func:`tracked_objects_function` -- k independently freed pointers in
  one function: the independence condition (§5.2) means work grows
  linearly, not exponentially, with k.

* :func:`call_chain_module` -- a linear call chain of depth d with many
  callsites per function: exercises function-summary caching.
"""


def diamond_function(n_diamonds, name="diamonds", use_pointer=True):
    """A function with ``n_diamonds`` sequential independent branches.

    The freed pointer threads through every diamond so the free checker
    keeps one live instance across all of them.
    """
    lines = ["int %s(struct device *p, int n) {" % name]
    if use_pointer:
        lines.append("    kfree(p);")
    for index in range(n_diamonds):
        lines.append("    if (n & %d)" % (1 << (index % 16)))
        lines.append("        n = n + %d;" % (index + 1))
        lines.append("    else")
        lines.append("        n = n - %d;" % (index + 1))
    lines.append("    return n;")
    lines.append("}")
    return "\n".join(lines)


def tracked_objects_function(k_objects, name="tracked", with_diamonds=2):
    """A function freeing ``k_objects`` distinct pointers, then running a
    few diamonds: the number of live SM instances is k throughout."""
    params = ", ".join("struct device *p%d" % i for i in range(k_objects))
    lines = ["int %s(%s, int n) {" % (name, params or "int unused")]
    for index in range(k_objects):
        lines.append("    kfree(p%d);" % index)
    for index in range(with_diamonds):
        lines.append("    if (n & %d)" % (1 << index))
        lines.append("        n = n + 1;")
        lines.append("    else")
        lines.append("        n = n - 1;")
    lines.append("    return n;")
    lines.append("}")
    return "\n".join(lines)


def call_chain_module(depth, callsites_per_level=3, name_prefix="level"):
    """A call chain ``level_0 -> level_1 -> ... -> level_{depth-1}`` where
    each function calls the next from several callsites.  Without function
    summaries the analysis re-traverses each callee once per callsite per
    path (exponential in depth); with summaries each callee is analyzed
    once per distinct entry state."""
    chunks = ["struct device { int flags; int count; int lck; char *buf; };"]
    for level in range(depth - 1, -1, -1):
        name = "%s_%d" % (name_prefix, level)
        if level == depth - 1:
            body = "    return n + 1;"
        else:
            callee = "%s_%d" % (name_prefix, level + 1)
            calls = "\n".join(
                "    n = %s(p, n);" % callee for __ in range(callsites_per_level)
            )
            body = calls + "\n    return n;"
        chunks.append(
            "int %s(struct device *p, int n) {\n%s\n}" % (name, body)
        )
    return "\n".join(chunks)


def loop_module(n_iters_hint=8, name="looper"):
    """A loop whose body frees and reassigns a pointer: exercises loop
    havoc (§8 step 3) and termination via the block cache."""
    return (
        "struct device { int flags; int count; int lck; char *buf; };\n"
        "int %s(struct device *p, int n) {\n"
        "    int i;\n"
        "    for (i = 0; i < n; i++) {\n"
        "        kfree(p);\n"
        "        p = resurrect(p);\n"
        "        if (i > %d)\n"
        "            break;\n"
        "    }\n"
        "    return 0;\n"
        "}\n" % (name, n_iters_hint)
    )
