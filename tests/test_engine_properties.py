"""Property-based engine tests.

The central §5 claim: because extensions are deterministic, caching is a
pure optimization -- on loop-free programs the cached and uncached
analyses report exactly the same errors.  We generate random branchy
programs with random kfree/use sequences and compare.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront.parser import parse
from repro.checkers import free_checker, lock_checker
from repro.engine.analysis import Analysis, AnalysisOptions


# A random program is a list of simple operations over a fixed set of
# pointers, nested in a random branch skeleton.
_POINTERS = ["p0", "p1", "p2"]

_ops = st.sampled_from(
    ["kfree(%s);", "use(%s);", "sink = *%s;", "%s = fresh();"]
)
_ptrs = st.sampled_from(_POINTERS)
_stmt = st.tuples(_ops, _ptrs).map(lambda t: t[0] % t[1])


def _block(statements):
    return "\n".join("    " + s for s in statements)


_program_body = st.recursive(
    st.lists(_stmt, min_size=1, max_size=4).map(_block),
    lambda inner: st.tuples(
        st.integers(0, 3), inner, inner
    ).map(
        lambda t: "    if (c%d) {\n%s\n    } else {\n%s\n    }"
        % (t[0], _indent(t[1]), _indent(t[2]))
    ),
    max_leaves=6,
)


def _indent(text):
    return "\n".join("    " + line for line in text.splitlines())


def _make_program(body):
    params = ", ".join("int *%s" % p for p in _POINTERS)
    conds = ", ".join("int c%d" % i for i in range(4))
    return (
        "int sink;\n"
        "int f(%s, %s) {\n%s\n    return 0;\n}\n" % (params, conds, body)
    )


def _report_set(result):
    return {
        (r.message, r.location.line, r.location.column) for r in result.reports
    }


class TestCachingIsPureOptimization:
    """The §5 determinism argument: caching only skips work that would
    repeat.  That claim is exact when the extension state is the whole
    path state -- i.e. with false-path pruning off.  (With pruning on, the
    cache deliberately ignores value constraints, one of the §7
    unsoundnesses; TestDocumentedCachePruningUnsoundness pins it down.)"""

    OPTS = dict(false_path_pruning=False)

    @given(_program_body)
    @settings(max_examples=60, deadline=None)
    def test_same_reports_with_and_without_cache(self, body):
        code = _make_program(body)
        unit = parse(code, "gen.c")
        cached = Analysis(
            [unit], AnalysisOptions(caching=True, **self.OPTS)
        ).run(free_checker())
        unit2 = parse(code, "gen.c")
        uncached = Analysis(
            [unit2], AnalysisOptions(caching=False, **self.OPTS)
        ).run(free_checker())
        assert _report_set(cached) == _report_set(uncached)

    @given(_program_body)
    @settings(max_examples=40, deadline=None)
    def test_cache_never_does_more_work(self, body):
        code = _make_program(body)
        unit = parse(code, "gen.c")
        cached = Analysis(
            [unit], AnalysisOptions(caching=True, **self.OPTS)
        ).run(free_checker())
        unit2 = parse(code, "gen.c")
        uncached = Analysis(
            [unit2], AnalysisOptions(caching=False, **self.OPTS)
        ).run(free_checker())
        assert (
            cached.stats["points_visited"] <= uncached.stats["points_visited"]
        )


class TestDocumentedCachePruningUnsoundness:
    """With pruning ON, the block cache keys only extension tuples -- not
    value constraints -- so a path that would be pruned differently can be
    aborted by a cache hit (§5.2 semantics; a §7-style approximation).
    This pins the behaviour so a change to it is noticed."""

    CODE = (
        "int sink;\n"
        "int callee(int *p0, int c0) {\n"
        "    if (c0)\n"
        "        kfree(p0);\n"
        "    else {\n"
        "        kfree(p0);\n"
        "        kfree(p0);\n"
        "    }\n"
        "    return 0;\n"
        "}\n"
        "int caller(int *p0, int c0) {\n"
        "    kfree(p0);\n"
        "    callee(p0, c0);\n"
        "    if (c0)\n"
        "        kfree(p0);\n"
        "    else {\n"
        "        kfree(p0);\n"
        "        kfree(p0);\n"
        "    }\n"
        "    return 0;\n"
        "}\n"
    )

    def _reports(self, caching):
        result = Analysis(
            [parse(self.CODE, "u.c")],
            AnalysisOptions(caching=caching, false_path_pruning=True),
        ).run(free_checker())
        return _report_set(result)

    def test_uncached_finds_a_superset(self):
        cached = self._reports(caching=True)
        uncached = self._reports(caching=False)
        assert cached <= uncached  # caching may only drop, never invent


class TestDeterminism:
    @given(_program_body)
    @settings(max_examples=30, deadline=None)
    def test_repeated_runs_identical(self, body):
        code = _make_program(body)
        first = Analysis([parse(code)], AnalysisOptions()).run(free_checker())
        second = Analysis([parse(code)], AnalysisOptions()).run(free_checker())
        assert _report_set(first) == _report_set(second)


class TestInterproceduralCachingProperty:
    """Function-summary caching must also be a pure optimization: a random
    caller/callee pair reports the same errors with caching on and off."""

    @given(_program_body, _program_body)
    @settings(max_examples=30, deadline=None)
    def test_interprocedural_cache_equivalence(self, callee_body, caller_body):
        params = ", ".join("int *%s" % p for p in _POINTERS)
        conds = ", ".join("int c%d" % i for i in range(4))
        args = ", ".join(_POINTERS) + ", " + ", ".join("c%d" % i for i in range(4))
        code = (
            "int sink;\n"
            "int callee(%s, %s) {\n%s\n    return 0;\n}\n"
            "int caller(%s, %s) {\n%s\n    callee(%s);\n%s\n    return 0;\n}\n"
            % (params, conds, callee_body, params, conds, caller_body, args,
               callee_body)
        )
        cached = Analysis(
            [parse(code)],
            AnalysisOptions(caching=True, false_path_pruning=False),
        ).run(free_checker())
        uncached = Analysis(
            [parse(code)],
            AnalysisOptions(caching=False, false_path_pruning=False),
        ).run(free_checker())
        assert _report_set(cached) == _report_set(uncached)


class TestLockCheckerProperties:
    """Generated lock/unlock sequences: the checker's verdict on
    straight-line code must match a trivial interpreter."""

    @given(st.lists(st.sampled_from(["lock", "unlock"]), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_straightline_matches_interpreter(self, ops):
        body = "\n".join("    %s(l);" % op for op in ops)
        code = "int f(int *l) {\n%s\n    return 0;\n}\n" % body
        result = Analysis([parse(code)]).run(lock_checker())
        messages = sorted(r.message for r in result.reports)

        # trivial interpreter over the same SM
        expected = []
        held = False
        for op in ops:
            if op == "lock":
                if held:
                    expected.append("double acquire of lock l!")
                held = True
            else:
                if held:
                    held = False
                else:
                    expected.append("releasing lock l without acquiring it!")
        if held:
            expected.append("lock l never released!")
        # reports are deduplicated per location+message; the interpreter
        # may predict duplicates -- compare as sets.
        assert set(messages) == set(expected)
