"""Type representation tests."""

from repro.cfront import types as t


class TestBasicTypes:
    def test_classification(self):
        assert t.INT.is_scalar() and t.INT.is_arithmetic() and t.INT.is_integer()
        assert t.FLOAT.is_scalar() and not t.FLOAT.is_integer()
        assert t.VOID.is_void() and not t.VOID.is_scalar()
        assert t.BOOL.is_integer()

    def test_equality_structural(self):
        assert t.BasicType("int") == t.INT
        assert t.BasicType("long") != t.INT
        assert hash(t.BasicType("int")) == hash(t.INT)


class TestPointers:
    def test_pointer(self):
        p = t.PointerType(t.INT)
        assert p.is_pointer() and p.is_scalar()
        assert p == t.PointerType(t.INT)
        assert p != t.PointerType(t.CHAR)

    def test_qualifiers_ignored_in_equality(self):
        assert t.PointerType(t.INT, ("const",)) == t.PointerType(t.INT)

    def test_nested(self):
        pp = t.PointerType(t.PointerType(t.CHAR))
        assert pp.target.is_pointer()


class TestArrays:
    def test_array_not_scalar(self):
        a = t.ArrayType(t.INT, None)
        assert not a.is_scalar()

    def test_decay(self):
        a = t.ArrayType(t.CHAR, None)
        assert a.decay() == t.PointerType(t.CHAR)

    def test_equality_ignores_size(self):
        assert t.ArrayType(t.INT, None) == t.ArrayType(t.INT, None)


class TestFunctions:
    def test_function_type(self):
        fn = t.FunctionType(t.INT, (t.PointerType(t.CHAR),), varargs=True)
        assert fn.is_function()
        assert fn == t.FunctionType(t.INT, (t.PointerType(t.CHAR),), True)
        assert fn != t.FunctionType(t.INT, (), True)


class TestRecords:
    def test_nominal_equality(self):
        a = t.RecordType("struct", "s", [("x", t.INT)])
        b = t.RecordType("struct", "s")  # incomplete, same tag
        assert a == b
        assert a != t.RecordType("union", "s")
        assert a != t.RecordType("struct", "other")

    def test_anonymous_identity(self):
        a = t.RecordType("struct", None)
        b = t.RecordType("struct", None)
        assert a == a
        assert a != b

    def test_field_lookup(self):
        s = t.RecordType("struct", "s", [("x", t.INT), ("p", t.PointerType(t.CHAR))])
        assert s.field_type("p") == t.PointerType(t.CHAR)
        assert s.field_type("missing") is None


class TestEnums:
    def test_enum_is_integer(self):
        e = t.EnumType("colors", (("RED", 0),))
        assert e.is_integer() and e.is_scalar()

    def test_nominal(self):
        assert t.EnumType("a") != t.EnumType("b")
        assert t.EnumType("a") == t.EnumType("a")


class TestTypedefs:
    def test_resolution(self):
        size_t = t.TypedefType("size_t", t.UNSIGNED_LONG)
        assert size_t.resolve() == t.UNSIGNED_LONG
        assert size_t.is_integer()
        assert size_t == t.UNSIGNED_LONG

    def test_chained(self):
        a = t.TypedefType("a_t", t.INT)
        b = t.TypedefType("b_t", a)
        assert b.resolve() == t.INT

    def test_pointer_typedef(self):
        p_t = t.TypedefType("ptr_t", t.PointerType(t.VOID))
        assert p_t.is_pointer()
        assert not p_t.is_integer()

    def test_str_forms(self):
        assert str(t.PointerType(t.INT)) == "int *"
        assert str(t.RecordType("struct", "dev")) == "struct dev"
        assert str(t.TypedefType("u32", t.UNSIGNED_INT)) == "u32"
