"""Summary machinery tests (§5.2, §6.2, Figure 6)."""

from repro.cfront.parser import parse, parse_expression
from repro.checkers import free_checker
from repro.engine.analysis import Analysis
from repro.engine.state import UNKNOWN, VarInstance
from repro.engine.summaries import (
    ADD,
    TRANSITION,
    BlockSummary,
    Edge,
    EdgeSet,
    SummaryTable,
    make_add_edge,
    make_transition_edge,
    relax,
)
from repro.metal.sm import PLACEHOLDER


def inst(obj_text, value, data=None):
    return VarInstance("v", parse_expression(obj_text), value, data)


class TestEdgeConstruction:
    def test_transition_edge(self):
        entry = inst("p", "freed")
        exit_ = entry.copy()
        edge = make_transition_edge("start", entry, "start", exit_)
        assert edge.kind == TRANSITION
        assert edge.start == entry.tuple_key("start")
        assert edge.describe() == "(start,v:p->freed) --> (start,v:p->freed)"

    def test_stop_edge(self):
        entry = inst("p", "freed")
        edge = make_transition_edge("start", entry, "start", None)
        assert edge.ends_in_stop
        assert "stop" in edge.describe()

    def test_add_edge_has_unknown_start(self):
        created = inst("w", "freed")
        edge = make_add_edge("start", "start", created)
        assert edge.kind == ADD
        assert edge.start[1][2] == UNKNOWN
        assert edge.describe() == "(start,v:w->$unknown) --> (start,v:w->freed)"

    def test_global_edge(self):
        edge = make_transition_edge("enabled", None, "disabled", None)
        assert edge.is_global_only
        assert edge.start == ("enabled", PLACEHOLDER)
        assert edge.end == ("disabled", PLACEHOLDER)


class TestEdgeSet:
    def test_dedup(self):
        edges = EdgeSet()
        a = make_transition_edge("s", inst("p", "freed"), "s", inst("p", "freed"))
        b = make_transition_edge("s", inst("p", "freed"), "s", inst("p", "freed"))
        assert edges.add(a)
        assert not edges.add(b)
        assert len(edges) == 1

    def test_indexing(self):
        edges = EdgeSet()
        edge = make_transition_edge("s", inst("p", "freed"), "s", inst("p", "stop2"))
        edges.add(edge)
        assert list(edges.with_start(edge.start)) == [edge]
        assert list(edges.with_end(edge.end)) == [edge]
        assert edges.with_start(("nope", PLACEHOLDER)) == ()


class TestBlockSummaryCovers:
    def test_covers_transition_start(self):
        class FakeBlock:
            index = 0
            is_exit = False

        summary = BlockSummary(FakeBlock())
        entry = inst("p", "freed")
        summary.edges.add(make_transition_edge("start", entry, "start", entry.copy()))
        assert summary.covers(entry.tuple_key("start"))
        assert not summary.covers(inst("q", "freed").tuple_key("start"))

    def test_add_edge_does_not_cover(self):
        class FakeBlock:
            index = 0
            is_exit = False

        summary = BlockSummary(FakeBlock())
        summary.edges.add(make_add_edge("start", "start", inst("p", "freed")))
        # an add edge start contains UNKNOWN; never equals a live tuple
        assert not summary.covers(inst("p", "freed").tuple_key("start"))


class _Block:
    def __init__(self, index, is_exit=False):
        self.index = index
        self.is_exit = is_exit


class TestRelax:
    """Direct tests of the Figure 6 walk on a hand-built backtrace."""

    def test_exit_seeds_suffix(self):
        table = SummaryTable()
        b_exit = _Block(1, is_exit=True)
        table.get(b_exit).edges.add(
            make_transition_edge("s", inst("p", "freed"), "s", inst("p", "freed"))
        )
        relax([b_exit], table)
        assert len(table.get(b_exit).suffix) == 1

    def test_transition_composition(self):
        table = SummaryTable()
        b0, b1 = _Block(0), _Block(1, is_exit=True)
        # b0: p freed -> freed ; b1: p freed -> freed (identity chain)
        table.get(b0).edges.add(
            make_transition_edge("s", inst("p", "freed"), "s", inst("p", "freed"))
        )
        table.get(b1).edges.add(
            make_transition_edge("s", inst("p", "freed"), "s", inst("p", "freed"))
        )
        relax([b0, b1], table)
        suffix = list(table.get(b0).suffix)
        assert any(e.kind == TRANSITION and not e.is_global_only for e in suffix)

    def test_stop_edges_omitted_from_suffix(self):
        # §6.2: "none of the edges in the suffix summaries end in a tuple
        # containing the stop state."
        table = SummaryTable()
        b_exit = _Block(0, is_exit=True)
        table.get(b_exit).edges.add(
            make_transition_edge("s", inst("p", "freed"), "s", None)
        )
        relax([b_exit], table)
        assert len(table.get(b_exit).suffix) == 0

    def test_add_edge_relaxes_through_global_edge(self):
        # "these special transition edges will match the initial state of
        # an add edge if the values of the global instance match."
        table = SummaryTable()
        b0, b1 = _Block(0), _Block(1, is_exit=True)
        table.get(b0).edges.add(make_transition_edge("g0", None, "g1", None))
        table.get(b1).edges.add(make_transition_edge("g1", None, "g1", None))
        created = inst("w", "freed")
        table.get(b1).edges.add(make_add_edge("g1", "g1", created))
        relax([b0, b1], table)
        suffix_adds = [e for e in table.get(b0).suffix if e.kind == ADD]
        assert len(suffix_adds) == 1
        # the start global moved back to b0's entry value
        assert suffix_adds[0].start[0] == "g0"

    def test_add_then_transition_composes_to_add(self):
        table = SummaryTable()
        b0, b1 = _Block(0), _Block(1, is_exit=True)
        created = inst("w", "freed")
        table.get(b0).edges.add(make_add_edge("s", "s", created))
        table.get(b1).edges.add(
            make_transition_edge("s", inst("w", "freed"), "s", inst("w", "freed"))
        )
        relax([b0, b1], table)
        suffix = [e for e in table.get(b0).suffix if e.kind == ADD]
        assert len(suffix) == 1

    def test_local_filter(self):
        table = SummaryTable()
        b_exit = _Block(0, is_exit=True)
        table.get(b_exit).edges.add(
            make_transition_edge("s", inst("q", "freed"), "s", inst("q", "freed"))
        )

        def filter_q(edge):
            snapshot = edge.end_snapshot
            if snapshot is None:
                return False
            from repro.cfront.astnodes import identifiers_in

            return "q" in identifiers_in(snapshot.obj)

        relax([b_exit], table, filter_q)
        assert len(table.get(b_exit).suffix) == 0


class TestFigure5Summaries:
    """End-to-end: run the free checker on Figure 2 and check the summary
    rows Figure 5 prints."""

    def run(self, fig2_code):
        from repro.cfront.parser import parse

        unit = parse(fig2_code, "fig2.c")
        analysis = Analysis([unit])
        table = analysis.run_one(free_checker())
        cfg = analysis._cfg("contrived")
        return analysis, table, cfg

    def test_function_summary_of_contrived(self, fig2_code):
        analysis, table, cfg = self.run(fig2_code)
        entry_suffix = table.get(cfg.entry).suffix
        rows = sorted(e.describe() for e in entry_suffix if not e.is_global_only)
        # Fig. 5 block 5 suffix summary: p freed -> p freed (transition) and
        # w unknown -> w freed (add).
        assert "(start,v:p->freed) --> (start,v:p->freed)" in rows
        assert "(start,v:w->$unknown) --> (start,v:w->freed)" in rows

    def test_no_q_in_suffix_summaries(self, fig2_code):
        # Fig. 5 caption: "none of the suffix summaries record any
        # information about q because q is a local variable."
        analysis, table, cfg = self.run(fig2_code)
        for block in cfg.blocks:
            for edge in table.get(block).suffix:
                assert "v:q->" not in edge.describe()

    def test_no_stop_in_suffix_summaries(self, fig2_code):
        analysis, table, cfg = self.run(fig2_code)
        for block in cfg.blocks:
            for edge in table.get(block).suffix:
                assert not edge.ends_in_stop

    def test_block_summaries_do_record_q(self, fig2_code):
        # Block summaries (unlike suffix summaries) track q: Fig. 5 blocks
        # 7 and 10 mention q's add and kill.
        analysis, table, cfg = self.run(fig2_code)
        texts = []
        for block in cfg.blocks:
            texts.extend(e.describe() for e in table.get(block).edges)
        assert any("v:q->$unknown) --> (start,v:q->freed)" in t for t in texts)
        assert any("v:q->freed) --> (start,v:q->stop)" in t for t in texts)
