"""Path-feasibility refinement: slice + lightweight symbolic execution.

The false-path pruner (§8) is syntactic and per-branch; Slabý et al.
("On Synergy of Metal, Slicing, and Symbolic Execution", PAPERS.md)
show the natural next stage: for each reported error path, slice the
function to the statements the report depends on and symbolically
execute the sliced paths to *confirm* or *demote* the report.  This
package implements that stage with no SMT dependency: an interval +
equality/congruence domain layered on the engine's own
:class:`repro.engine.falsepath.PathConstraints`.

Verdicts (docs/REFINE.md):

``confirmed``
    at least one enumerated path realizes the report's trace with a
    consistent constraint state -- the error path is feasible under
    the abstract domain.
``infeasible``
    path enumeration was exhaustive (no budget cut, loops covered by
    the sound widening families), at least one path realizes the trace
    syntactically, and *every* such path is contradictory.
``unknown``
    anything the evaluator will not vouch for: interprocedural
    reports, budget/fault degradation, loop shapes outside the
    widening scheme, or a trace the CFG model cannot re-anchor.

Verdicts land in ``Report.annotations["feasibility"]`` and are cached
in the store's summary tier keyed by (function fingerprint, report
hash), so warm runs over an unchanged function replay verdicts instead
of re-evaluating.
"""

from repro.refine.domain import Interval, RefineState
from repro.refine.engine import (
    REFINE_VERSION,
    VERDICT_CONFIRMED,
    VERDICT_INFEASIBLE,
    VERDICT_UNKNOWN,
    RefineOptions,
    apply_refine_mode,
    classify_report,
    demote_infeasible,
    drop_infeasible,
    refine_reports,
    verdict_of,
)
from repro.refine.slicing import relevant_variables

__all__ = [
    "Interval",
    "RefineState",
    "REFINE_VERSION",
    "VERDICT_CONFIRMED",
    "VERDICT_INFEASIBLE",
    "VERDICT_UNKNOWN",
    "RefineOptions",
    "apply_refine_mode",
    "classify_report",
    "demote_infeasible",
    "drop_infeasible",
    "refine_reports",
    "relevant_variables",
    "verdict_of",
]
