/* Expression torture: precedence, casts, sizeof, pointers. */

typedef unsigned int u32;

u32 hash(const char *s) {
    u32 h = 5381;
    while (*s)
        h = ((h << 5) + h) ^ (u32)*s++;
    return h;
}

int bit_tricks(unsigned x) {
    x = x - ((x >> 1) & 0x55555555);
    x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
    x = (x + (x >> 4)) & 0x0F0F0F0F;
    return (int)((x * 0x01010101) >> 24);
}

int pointer_dance(int **pp, int *arr, int n) {
    int *p = &arr[n / 2];
    *pp = p;
    p += 2;
    p -= 1;
    ++*p;
    (*pp)[1] = *p--;
    return *&arr[0] + **pp;
}

long mixed_arith(int a, long b, char c) {
    return a + b * c - (long)(a / (c ? c : 1)) % 7;
}

int assignment_soup(int a, int b) {
    int x = 0;
    x += a;
    x -= b;
    x *= 2;
    x /= 3;
    x %= 100;
    x <<= 1;
    x >>= 2;
    x &= 0xFF;
    x |= a & 1;
    x ^= b & 1;
    return x;
}

unsigned long sizes(void) {
    return sizeof(int) + sizeof(char *) + sizeof(struct { int a; int b; })
        + sizeof "literal" + sizeof(u32);
}

int chained_calls(int (*f)(int), int (*g)(int), int x) {
    return f(g(f(x))) + (f ? f : g)(x);
}
