/* The user-facing ioctl surface.
 *
 * Seeded bugs:
 *   ioctl_set_slot  : unchecked user index into a fixed table (range)
 *   ioctl_raw_write : raw dereference of a user pointer     (user-pointer)
 */
#include "kernel.h"

static int config_table[MAX_DEVICES];

int ioctl_get_config(int cmd) {
    int idx = get_user_int(cmd);
    if (idx >= MAX_DEVICES)
        return -EINVAL;
    return config_table[idx];
}

int ioctl_set_slot(int cmd, int value) {
    int idx = get_user_int(cmd);
    config_table[idx] = value;      /* BUG: idx is unchecked */
    return 0;
}

int ioctl_safe_write(int cmd, struct device *dev) {
    char tmp[RING_SIZE];
    char *src = get_user_ptr(cmd);
    if (copy_from_user(tmp, src, RING_SIZE))
        return -EIO;
    dev->buf[0] = tmp[0];
    return 0;
}

int ioctl_raw_write(int cmd, struct device *dev) {
    char *src = get_user_ptr(cmd);
    dev->buf[0] = *src;             /* BUG: raw user pointer deref */
    return 0;
}

int ioctl_dispatch(int cmd, struct device *dev) {
    switch (cmd & 3) {
    case 0:
        return ioctl_get_config(cmd);
    case 1:
        return ioctl_set_slot(cmd, 1);
    case 2:
        return ioctl_safe_write(cmd, dev);
    default:
        return ioctl_raw_write(cmd, dev);
    }
}
