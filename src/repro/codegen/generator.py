"""Deterministic kernel-style C generator with ground-truth bug injection.

Each generated function follows one of a handful of kernel idioms
(lock/unlock around a critical section, allocate/check/use/free, user
input handling, wrapper functions) and, with a seeded probability, gets a
specific bug injected: missing unlock on an error path, use-after-free,
double free, unchecked allocation, unchecked user index, user-pointer
dereference.

The generator returns both the C text and the list of
:class:`InjectedBug` ground-truth records; benchmark harnesses score
checkers against them.
"""

import random


class InjectedBug:
    """Ground truth for one injected bug."""

    def __init__(self, kind, function):
        self.kind = kind
        self.function = function

    def __repr__(self):
        return "InjectedBug(%r, %r)" % (self.kind, self.function)

    def __eq__(self, other):
        return (
            isinstance(other, InjectedBug)
            and other.kind == self.kind
            and other.function == self.function
        )

    def __hash__(self):
        return hash((self.kind, self.function))


#: Bug kinds the generator can inject, mapped to the checker that finds them.
BUG_KINDS = {
    "missing-unlock": "lock",
    "double-lock": "lock",
    "use-after-free": "free",
    "double-free": "free",
    "unchecked-alloc": "mallocfail",
    "tainted-index": "range",
    "user-pointer-deref": "user-pointer",
    "interproc-uaf": "free",
}

_HEADER = """\
/* generated kernel-style module (seed=%d) */
struct device { int flags; int count; int lck; char *buf; };
"""


class KernelWorkload:
    """The generator output: source text + ground truth."""

    def __init__(self, source, bugs, seed, function_names):
        self.source = source
        self.bugs = bugs
        self.seed = seed
        self.function_names = function_names

    def bugs_of_kind(self, kind):
        return [b for b in self.bugs if b.kind == kind]

    def __repr__(self):
        return "<KernelWorkload %d functions, %d bugs, seed=%d>" % (
            len(self.function_names),
            len(self.bugs),
            self.seed,
        )


def generate_kernel_module(seed=0, n_functions=20, bug_rate=0.3, kinds=None,
                           suppression_idioms=False):
    """Generate one module.

    ``bug_rate`` is the probability that a generated function gets its
    idiom's bug injected.  ``kinds`` restricts the idioms used (defaults
    to all of ``BUG_KINDS``).  ``suppression_idioms`` additionally emits
    *correct* functions written in the idioms §8's techniques exist to
    protect (correlated branches, kill-then-reuse, synonym checks) --
    they stay clean only while those techniques are enabled, which is
    what the ablation benchmarks measure.
    """
    rng = random.Random(seed)
    kinds = list(kinds or BUG_KINDS)
    chunks = [_HEADER % seed]
    bugs = []
    names = []
    for index in range(n_functions):
        kind = kinds[index % len(kinds)]
        buggy = rng.random() < bug_rate
        name = "%s_%d" % (kind.replace("-", "_"), index)
        names.append(name)
        body, injected = _FUNCTION_MAKERS[kind](name, buggy, rng)
        chunks.append(body)
        if injected:
            bugs.append(InjectedBug(kind, name))
    if suppression_idioms:
        for maker_index, maker in enumerate(_SUPPRESSION_MAKERS):
            name = "idiom_%d" % maker_index
            names.append(name)
            chunks.append(maker(name, rng))
    return KernelWorkload("\n".join(chunks), bugs, seed, names)


def _idiom_correlated_branches(name, rng):
    """Clean only under false-path pruning (the Fig. 2 shape)."""
    return (
        "int %s(struct device *p, int x) {\n"
        "    if (x)\n"
        "        kfree(p);\n"
        "    if (!x)\n"
        "        return p->count;\n"
        "    return 0;\n"
        "}\n" % name
    )


def _idiom_kill_then_reuse(name, rng):
    """Clean only under kill-on-redefinition."""
    return (
        "int %s(struct device *p, int n) {\n"
        "    kfree(p);\n"
        "    p = make_device(n);\n"
        "    p->count = n;\n"
        "    return 0;\n"
        "}\n" % name
    )


def _idiom_synonym_check(name, rng):
    """Clean only under synonym tracking (the §8 kmalloc example)."""
    return (
        "int %s(int n) {\n"
        "    struct device *p, *q;\n"
        "    p = q = kmalloc(n);\n"
        "    if (!p)\n"
        "        return -1;\n"
        "    q->count = n;\n"
        "    return 0;\n"
        "}\n" % name
    )


_SUPPRESSION_MAKERS = (
    _idiom_correlated_branches,
    _idiom_kill_then_reuse,
    _idiom_synonym_check,
)


# -- per-idiom function makers ------------------------------------------------


def _lock_missing_unlock(name, buggy, rng):
    """Lock around a critical section; bug: early error return skips the
    unlock."""
    error_branch = (
        "    if (dev->flags & %d) {\n"
        "        %s\n"
        "        return -1;\n"
        "    }\n"
    ) % (rng.randint(1, 15), "" if buggy else "unlock(&dev->lck);")
    text = (
        "int %s(struct device *dev) {\n"
        "    lock(&dev->lck);\n"
        "    dev->count = dev->count + 1;\n"
        "%s"
        "    dev->flags = 0;\n"
        "    unlock(&dev->lck);\n"
        "    return 0;\n"
        "}\n"
    ) % (name, error_branch)
    return text, buggy


def _double_lock(name, buggy, rng):
    relock = "    lock(&dev->lck);\n" if buggy else ""
    text = (
        "int %s(struct device *dev, int n) {\n"
        "    lock(&dev->lck);\n"
        "    if (n > %d)\n"
        "        dev->flags = n;\n"
        "%s"
        "    dev->count = n;\n"
        "    unlock(&dev->lck);\n"
        "    return n;\n"
        "}\n"
    ) % (name, rng.randint(2, 9), relock)
    return text, buggy


def _use_after_free(name, buggy, rng):
    tail = "    return p->flags;\n" if buggy else "    return 0;\n"
    text = (
        "int %s(struct device *p, int n) {\n"
        "    p->count = n;\n"
        "    if (n < 0) {\n"
        "        kfree(p);\n"
        "        return -1;\n"
        "    }\n"
        "    kfree(p);\n"
        "%s"
        "}\n"
    ) % (name, tail)
    return text, buggy


def _double_free(name, buggy, rng):
    refree = "    kfree(p);\n" if buggy else ""
    text = (
        "int %s(struct device *p) {\n"
        "    int rc = p->flags;\n"
        "    kfree(p);\n"
        "%s"
        "    return rc;\n"
        "}\n"
    ) % (name, refree)
    return text, buggy


def _unchecked_alloc(name, buggy, rng):
    check = "" if buggy else "    if (!p)\n        return -1;\n"
    text = (
        "int %s(int n) {\n"
        "    struct device *p = kmalloc(n);\n"
        "%s"
        "    p->count = n;\n"
        "    kfree(p);\n"
        "    return 0;\n"
        "}\n"
    ) % (name, check)
    return text, buggy


def _tainted_index(name, buggy, rng):
    size = rng.choice((16, 32, 64))
    check = "" if buggy else "    if (idx >= %d)\n        return -1;\n" % size
    text = (
        "int %s(int cmd) {\n"
        "    int table[%d];\n"
        "    int idx = get_user_int(cmd);\n"
        "%s"
        "    table[idx] = cmd;\n"
        "    return table[0];\n"
        "}\n"
    ) % (name, size, check)
    return text, buggy


def _user_pointer_deref(name, buggy, rng):
    use = (
        "    *p = cmd;\n"
        if buggy
        else "    copy_from_user(buf, p, %d);\n" % rng.choice((8, 16))
    )
    text = (
        "int %s(int cmd) {\n"
        "    char buf[32];\n"
        "    char *p = get_user_ptr(cmd);\n"
        "%s"
        "    return 0;\n"
        "}\n"
    ) % (name, use)
    return text, buggy


def _interproc_uaf(name, buggy, rng):
    """A helper frees its argument; the caller must not touch it after
    the call -- found only by the interprocedural machinery (Table 2)."""
    tail = "    return dev->count;\n" if buggy else "    return %d;\n" % rng.randint(0, 9)
    text = (
        "void %s_discard(struct device *p) {\n"
        "    p->flags = 0;\n"
        "    kfree(p);\n"
        "}\n"
        "int %s(struct device *dev, int n) {\n"
        "    dev->count = n;\n"
        "    %s_discard(dev);\n"
        "%s"
        "}\n"
    ) % (name, name, name, tail)
    return text, buggy


_FUNCTION_MAKERS = {
    "missing-unlock": _lock_missing_unlock,
    "double-lock": _double_lock,
    "use-after-free": _use_after_free,
    "double-free": _double_free,
    "unchecked-alloc": _unchecked_alloc,
    "tainted-index": _tainted_index,
    "user-pointer-deref": _user_pointer_deref,
    "interproc-uaf": _interproc_uaf,
}


def generate_wrapper_module(seed=0, n_users=20, sections_per_user=3):
    """The §9 code-ranking scenario: lock *wrapper* functions that only
    acquire (or only release) -- which an intraprocedural pairing analysis
    flags every time -- plus honest users, each with several correctly
    paired critical sections and the occasional real bug in one of them.

    Returns (source, names_of_wrappers, names_of_real_bugs).
    """
    rng = random.Random(seed)
    chunks = [_HEADER % seed]
    chunks.append(
        "void helper_acquire(struct device *dev) {\n"
        "    lock(&dev->lck);\n"
        "}\n"
        "void helper_release(struct device *dev) {\n"
        "    unlock(&dev->lck);\n"
        "}\n"
    )
    real_bugs = []
    for index in range(n_users):
        buggy = index % 7 == 3
        name = "user_fn_%d" % index
        sections = []
        for section in range(sections_per_user):
            drop_unlock = buggy and section == sections_per_user - 1
            sections.append(
                "    lock(&dev->lck);\n"
                "    dev->count = %d;\n"
                "%s" % (
                    rng.randint(0, 99),
                    "" if drop_unlock else "    unlock(&dev->lck);\n",
                )
            )
        chunks.append(
            "int %s(struct device *dev) {\n%s    return 0;\n}\n"
            % (name, "".join(sections))
        )
        if buggy:
            real_bugs.append(name)
    return "\n".join(chunks), ["helper_acquire", "helper_release"], real_bugs
