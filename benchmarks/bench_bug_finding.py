"""The headline claim, end to end: the approach finds the bugs.

The paper's companion evaluations report thousands of bugs in Linux/BSD
with low false-positive rates for the tuned checkers.  Our substitute
(DESIGN.md) is the seeded kernel-style generator with ground truth: we
sweep seeds and sizes and measure recall and false positives per checker
family.
"""

from repro.checkers import (
    free_checker,
    lock_checker,
    malloc_fail_checker,
    range_check_checker,
    user_pointer_checker,
)
from repro.codegen import generate_kernel_module
from repro.driver.project import Project


def checker_suite():
    return [
        free_checker(("kfree", "vfree")),
        lock_checker(),
        malloc_fail_checker(),
        range_check_checker(),
        user_pointer_checker(),
    ]


def score(seed, n_functions=35, bug_rate=0.5):
    workload = generate_kernel_module(seed=seed, n_functions=n_functions,
                                      bug_rate=bug_rate)
    project = Project()
    project.compile_text(workload.source, "module_%d.c" % seed)
    result = project.run(checker_suite())
    buggy = {b.function for b in workload.bugs}
    found = {r.function for r in result.reports}
    hits = len(buggy & found)
    false_positives = sum(1 for r in result.reports if r.function not in buggy)
    return hits, len(buggy), false_positives, len(result.reports)


def test_recall_and_false_positives(benchmark):
    print("\nbug finding over seeded kernel modules "
          "(hits / injected, false positives):")
    total_hits = total_bugs = total_fp = 0
    for seed in (1, 2, 3, 4, 5):
        hits, injected, fp, reports = score(seed)
        total_hits += hits
        total_bugs += injected
        total_fp += fp
        print("  seed %d: %2d/%2d found, %d false positives (%d reports)"
              % (seed, hits, injected, fp, reports))
    recall = total_hits / max(1, total_bugs)
    print("  overall recall: %.0f%%, total false positives: %d"
          % (100 * recall, total_fp))
    assert recall >= 0.95
    assert total_fp == 0
    benchmark(score, 1)


def test_scaling_to_larger_modules(benchmark):
    print("\nanalysis effort vs module size:")
    for n in (20, 60, 180):
        workload = generate_kernel_module(seed=7, n_functions=n, bug_rate=0.3)
        project = Project()
        project.compile_text(workload.source, "big.c")
        analysis = project.analysis()
        result = analysis.run(checker_suite())
        print("  %4d functions: %6d points visited, %3d reports"
              % (n, analysis.stats["points_visited"], len(result.reports)))

    def run_180():
        workload = generate_kernel_module(seed=7, n_functions=180, bug_rate=0.3)
        project = Project()
        project.compile_text(workload.source, "big.c")
        return project.run(checker_suite())

    result = benchmark(run_180)
    assert len(result.reports) > 0
