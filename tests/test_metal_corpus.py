"""The shipped .metal checker corpus must compile and work."""

import glob
import os

import pytest

from conftest import messages, run_checker
from repro.metal import compile_metal

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), "..", "src", "repro", "checkers", "metal"
)


def corpus_files():
    return sorted(glob.glob(os.path.join(CORPUS_DIR, "*.metal")))


def load(name):
    with open(os.path.join(CORPUS_DIR, name)) as handle:
        return compile_metal(handle.read(), name)


class TestCorpusCompiles:
    def test_corpus_nonempty(self):
        assert len(corpus_files()) >= 4

    @pytest.mark.parametrize(
        "path", [os.path.basename(p) for p in corpus_files()]
    )
    def test_compiles(self, path):
        ext = load(path)
        assert ext.transitions


class TestCorpusBehaviour:
    def test_free_metal(self):
        result = run_checker(
            "int f(int *p) { kfree(p); return *p; }", load("free.metal")
        )
        assert messages(result) == ["using p after free!"]

    def test_lock_metal(self):
        result = run_checker(
            "int f(int *l) { lock(l); return 0; }", load("lock.metal")
        )
        assert messages(result) == ["lock l never released!"]

    def test_gets_metal(self):
        result = run_checker(
            "int f(char *b) { gets(b); fgets(b); return 0; }",
            load("gets.metal"),
        )
        assert messages(result) == ["call to gets() is never safe"]

    def test_open_close_metal(self):
        code = (
            "int good(int n) { int *f = open_file(n); close_file(f);"
            " return 0; }\n"
            "int bad(int n) { int *f = open_file(n); return 0; }\n"
        )
        result = run_checker(code, load("open_close.metal"))
        assert messages(result) == ["f opened but never closed"]


class TestCLIDiagnostics:
    def test_bad_c_file(self, tmp_path, capsys):
        from repro.driver.cli import main

        src = tmp_path / "broken.c"
        src.write_text("int f( { return; }")
        code = main(["--checker", "free", str(src)])
        assert code == 2
        assert "xgcc:" in capsys.readouterr().err

    def test_bad_metal_file(self, tmp_path, capsys):
        from repro.driver.cli import main

        bad = tmp_path / "broken.metal"
        bad.write_text("sm oops { start: }")
        src = tmp_path / "ok.c"
        src.write_text("int f(void) { return 0; }")
        code = main(["--metal", str(bad), str(src)])
        assert code == 2

    def test_missing_file(self, tmp_path, capsys):
        from repro.driver.cli import main

        code = main(["--checker", "free", str(tmp_path / "missing.c")])
        assert code == 2
