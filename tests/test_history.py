"""History-based false-positive suppression tests (§8)."""

import os

from repro.cfront.source import Location
from repro.engine.errors import ErrorReport
from repro.engine.history import HistoryDatabase


def report(line=10, message="using p after free!", function="f",
           variable="p", checker="free_checker", filename="dev.c"):
    return ErrorReport(
        checker=checker,
        message=message,
        location=Location(filename, line, 1),
        function=function,
        variable=variable,
    )


class TestHistoryMatching:
    def test_suppress_and_filter(self):
        db = HistoryDatabase()
        db.suppress(report())
        assert db.filter([report()]) == []

    def test_line_numbers_do_not_matter(self):
        # §8: matching fields are "relatively invariant under edits
        # (unlike, for example, line numbers)."
        db = HistoryDatabase()
        db.suppress(report(line=10))
        moved = report(line=250)
        assert db.is_suppressed(moved)

    def test_function_name_matters(self):
        db = HistoryDatabase()
        db.suppress(report(function="f"))
        assert not db.is_suppressed(report(function="g"))

    def test_variable_matters(self):
        db = HistoryDatabase()
        db.suppress(report(variable="p"))
        assert not db.is_suppressed(report(variable="q"))

    def test_message_matters(self):
        db = HistoryDatabase()
        db.suppress(report(message="using p after free!"))
        assert not db.is_suppressed(report(message="double free of p!"))

    def test_file_matters(self):
        db = HistoryDatabase()
        db.suppress(report(filename="dev.c"))
        assert not db.is_suppressed(report(filename="other.c"))

    def test_mixed_filtering(self):
        db = HistoryDatabase()
        db.suppress(report(function="known_fp"))
        reports = [report(function="known_fp"), report(function="new_bug")]
        kept = db.filter(reports)
        assert [r.function for r in kept] == ["new_bug"]


class TestPersistence:
    def test_save_load(self, tmp_path):
        db = HistoryDatabase()
        db.suppress(report())
        path = os.path.join(tmp_path, "history.json")
        db.save(path)
        loaded = HistoryDatabase.load(path)
        assert loaded.is_suppressed(report())
        assert len(loaded) == 1


class TestCrossVersionScenario:
    """Simulate two 'versions' of a module: inspecting version 1 marks a
    false positive; analyzing version 2 (edited, different line numbers)
    keeps it suppressed while new errors surface."""

    V1 = (
        "int f(int *p) { kfree(p); debug_dump(p); return 0; }\n"
    )
    V2 = (
        "/* new header comment */\n"
        "\n"
        "int f(int *p) { kfree(p); debug_dump(p); return 0; }\n"
        "int g(int *q) { kfree(q); return *q; }\n"
    )

    def checker(self):
        from repro.cfront import astnodes as ast
        from repro.metal import ANY_POINTER, Extension
        from repro.metal.patterns import Callout

        ext = Extension("free_checker")
        ext.state_var("v", ANY_POINTER)
        ext.transition("start", "{ kfree(v) }", to="v.freed")

        def used(context):
            obj = context.bindings.get("v")
            point = context.point
            if obj is None:
                return False
            if isinstance(point, ast.Call):
                key = ast.structural_key(obj)
                return any(ast.structural_key(a) == key for a in point.args)
            from repro.metal.callouts import mc_is_deref_of

            return mc_is_deref_of(point, obj)

        ext.transition(
            "v.freed", Callout(used, "any use"), to="v.stop",
            action=lambda ctx: ctx.err("use of freed %s", ctx.identifier("v")),
        )
        return ext

    def test_scenario(self):
        from conftest import run_checker

        v1 = run_checker(self.V1, self.checker(), filename="dev.c")
        assert len(v1.reports) == 1  # the debug_dump false positive

        db = HistoryDatabase()
        db.suppress(v1.reports[0])  # human inspected: false positive

        v2 = run_checker(self.V2, self.checker(), filename="dev.c")
        surviving = db.filter(v2.reports)
        assert len(v2.reports) == 2
        assert len(surviving) == 1
        assert surviving[0].function == "g"
