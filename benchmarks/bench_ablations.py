"""Ablation matrix for the engine's design choices.

DESIGN.md calls out five separable mechanisms: block/function caching
(§5.2), interprocedural analysis (§6), false-path pruning (§8), kills
(§8), and synonyms (§8).  Each column disables one mechanism and re-runs
the standard seeded workload; the table shows what each one buys --
recall, false positives, and work.
"""

from repro.codegen import generate_kernel_module
from repro.driver.project import Project
from repro.engine.analysis import AnalysisOptions


def checker_suite():
    from repro.checkers import (
        free_checker,
        lock_checker,
        malloc_fail_checker,
        range_check_checker,
        user_pointer_checker,
    )

    return [
        free_checker(("kfree", "vfree")),
        lock_checker(),
        malloc_fail_checker(),
        range_check_checker(),
        user_pointer_checker(),
    ]


def run_config(label, seeds=(1, 2, 3), **overrides):
    total_hits = total_bugs = total_fp = total_points = 0
    for seed in seeds:
        workload = generate_kernel_module(seed=seed, n_functions=32,
                                          bug_rate=0.5,
                                          suppression_idioms=True)
        project = Project()
        project.compile_text(workload.source, "m%d.c" % seed)
        analysis = project.analysis(AnalysisOptions(**overrides))
        result = analysis.run(checker_suite())
        buggy = {b.function for b in workload.bugs}
        helpers = {b.function + "_discard" for b in workload.bugs}
        hits = {
            b.function
            for b in workload.bugs
            if any(
                r.function in (b.function, b.function + "_discard")
                for r in result.reports
            )
        }
        fps = [
            r
            for r in result.reports
            if r.function not in buggy and r.function not in helpers
        ]
        total_hits += len(hits)
        total_bugs += len(buggy)
        total_fp += len(fps)
        total_points += analysis.stats["points_visited"]
    return label, total_hits, total_bugs, total_fp, total_points


CONFIGS = [
    ("full engine", {}),
    ("no caching", {"caching": False}),
    ("no interprocedural", {"interprocedural": False}),
    ("no false-path pruning", {"false_path_pruning": False}),
    ("no kills", {"kills": False}),
    ("no synonyms", {"synonyms": False}),
]


def test_ablation_matrix(benchmark):
    rows = [run_config(label, **overrides) for label, overrides in CONFIGS]

    print("\nablation matrix (3 seeds, 32 functions each):")
    print("  %-24s %-10s %-6s %s" % ("configuration", "recall", "FPs", "points"))
    for label, hits, bugs, fps, points in rows:
        print("  %-24s %3d/%-6d %-6d %d" % (label, hits, bugs, fps, points))

    by_label = {row[0]: row for row in rows}
    full = by_label["full engine"]
    # The full engine finds everything cleanly -- including the §8 idiom
    # functions that only stay clean because of the suppression machinery.
    assert full[1] == full[2] and full[3] == 0
    # Dropping interprocedural analysis loses the cross-function bugs.
    assert by_label["no interprocedural"][1] < full[1]
    # Dropping caching multiplies the work.
    assert by_label["no caching"][4] > full[4]
    # Each §8 technique suppresses its idiom's false positives.
    assert by_label["no false-path pruning"][3] > 0
    assert by_label["no kills"][3] > 0
    assert by_label["no synonyms"][3] > 0

    benchmark(run_config, "full engine", seeds=(1,))
