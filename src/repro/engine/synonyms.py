"""Synonym tracking (§8).

"If a variable tracked by an extension is assigned to another variable,
both variables become synonyms: state changes in one are mirrored in the
other."  (The paper implemented this as a 50-line addition.)

Each assignment ``q = p`` where ``p`` carries state creates a new instance
for ``q`` in the same state, linked through a shared synonym group; checker
transitions on either are mirrored to the group.  Engine-level kills
(redefinition) affect only the redefined object -- that is what makes the
Figure 2 walkthrough work: ``q = p; p = 0;`` leaves ``q`` freed.
"""

from repro.cfront import astnodes as ast

_next_group = [0]


def maybe_create_synonym(sm, assign_point):
    """Handle a possible synonym-creating assignment; returns the new
    instance or None."""
    if not isinstance(assign_point, ast.Assign) or assign_point.op != "=":
        return None
    target = assign_point.target
    value = assign_point.value
    if not ast.is_lvalue(target):
        return None
    # Look through chained assignments ("p = q = kmalloc(...)": p's value
    # is q), casts, and comma operators to the carrying lvalue.
    while True:
        if isinstance(value, ast.Assign):
            value = value.target
        elif isinstance(value, ast.Cast):
            value = value.operand
        elif isinstance(value, ast.Comma):
            value = value.right
        else:
            break
    source = sm.find(ast.structural_key(value))
    if source is None or source.inactive:
        return None
    existing = sm.find(ast.structural_key(target))
    if existing is source:
        return None
    clone = source.copy()
    clone.uid = None  # fresh identity
    from repro.engine.state import VarInstance

    VarInstance._next_uid[0] += 1
    clone.uid = VarInstance._next_uid[0]
    clone.retarget(target)
    clone.synonym_chain = source.synonym_chain + 1
    if source.synonym_group is None:
        _next_group[0] += 1
        source.synonym_group = _next_group[0]
    clone.synonym_group = source.synonym_group
    clone.created_location = assign_point.location
    from repro.cfront.unparse import unparse

    clone.record("became a synonym of %s" % unparse(value), assign_point.location)
    sm.add(clone)
    return clone


def mirror_transition(sm, instance, new_value, new_data=None):
    """Mirror a checker transition onto the instance's synonym group."""
    group = instance.synonym_group
    if group is None:
        return []
    mirrored = []
    for other in list(sm.active_vars):
        if other is instance or other.synonym_group != group:
            continue
        other.value = new_value
        if new_data is not None:
            other.data = dict(new_data)
        mirrored.append(other)
        if _is_stop(new_value):
            sm.remove(other)
    return mirrored


def _is_stop(value):
    from repro.metal.sm import STOP

    return value == STOP
