"""Run history: every analysis run persisted, diffable by hash.

A *run* is the finalized report set of one analysis over one tree,
stored as a JSON document in the artifact store's ``run`` tier (PR-7
backend interface: LocalStore / RemoteStore / TieredStore all serve
it), keyed by a run id.  On top of stored runs:

- ``xgcc --diff BASE HEAD`` and the report server's ``GET /diff``
  compute **new / resolved / unresolved** report sets by stable-hash
  set-difference -- no re-analysis, no text comparison;
- ``GET /runs`` lists stored runs with their report counts;
- triage (:mod:`repro.reports.triage`) marks suppressed hashes, which
  the diff reports in a separate ``suppressed`` bucket instead of
  ``new``.

Run frames live outside the cache GC sweep (history is a record, not a
cache); ``prune`` drops the oldest runs beyond a keep-count when a
deployment wants a bound.
"""

import hashlib
import json
import os
import time

from repro.reports.hashing import assign_report_hashes
from repro.reports.model import Report

#: The artifact-store tier run documents live in (docs/STORE.md).
RUN_TIER = "run"

#: Run-document shape version.
RUN_SCHEMA = 1

#: Run ids get this prefix so non-run keys (the triage document) can
#: share the tier without showing up in run listings.
RUN_ID_PREFIX = "r"


class RunHistoryError(Exception):
    """A run-history operation that could not be served (no backend,
    unknown run id, undecodable stored document)."""


def _new_run_id(payload_digest):
    """A fresh run id: time-ordered prefix + content digest tail, so ids
    sort chronologically and concurrent recorders never collide."""
    stamp = "%016x" % int(time.time() * 1e6)
    return RUN_ID_PREFIX + stamp + payload_digest[:12]


def diff_hash_sets(base_hashes, head_hashes):
    """``(new, resolved, unresolved)`` hash sets between two runs."""
    base, head = set(base_hashes), set(head_hashes)
    return head - base, base - head, head & base


class RunHistory:
    """Stored runs over one artifact-store backend."""

    def __init__(self, backend, stats=None):
        if backend is None:
            raise RunHistoryError(
                "run history needs a store backend (--cache-dir or "
                "--store-url)"
            )
        self.backend = backend
        self.stats = stats

    def _count(self, name, amount=1):
        if self.stats is not None:
            self.stats.add(name, amount)

    # -- recording -----------------------------------------------------------

    def record_run(self, reports, run_id=None, meta=None):
        """Persist one run's report set; returns the run id.

        ``reports`` is the canonical serial-order report list; hashes
        are assigned here if the engine has not already.  ``meta`` is an
        arbitrary JSON-able dict (checker set, tree name, ranking mode)
        stored alongside.
        """
        if any(report.report_hash is None for report in reports):
            assign_report_hashes(reports)
        doc = {
            "run_schema": RUN_SCHEMA,
            "timestamp": time.time(),
            "meta": dict(meta or {}),
            "reports": [report.to_dict() for report in reports],
        }
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        if run_id is None:
            run_id = _new_run_id(hashlib.sha256(payload).hexdigest())
        elif not run_id.startswith(RUN_ID_PREFIX):
            raise RunHistoryError(
                "run ids must start with %r (got %r)"
                % (RUN_ID_PREFIX, run_id)
            )
        doc["run_id"] = run_id
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.backend.put_many(RUN_TIER, {run_id: payload})
        self._count("report_runs_recorded")
        return run_id

    # -- reading -------------------------------------------------------------

    def run_ids(self):
        """Stored run ids, oldest first (ids are time-ordered)."""
        entries = self.backend.list_tier(RUN_TIER)
        return sorted(
            key for key in entries if key.startswith(RUN_ID_PREFIX)
        )

    def list_runs(self):
        """``[{run_id, timestamp, report_count, meta}]``, oldest first."""
        out = []
        for run_id in self.run_ids():
            try:
                doc = self.load_run(run_id)
            except RunHistoryError:
                continue  # undecodable stray frame: skip, don't fail the list
            out.append({
                "run_id": run_id,
                "timestamp": doc.get("timestamp"),
                "report_count": len(doc.get("reports") or ()),
                "meta": doc.get("meta") or {},
            })
        return out

    def load_run(self, run_id):
        """The stored run document for ``run_id``."""
        frames = self.backend.get_many(RUN_TIER, [run_id])
        data = frames.get(run_id)
        if data is None:
            raise RunHistoryError("unknown run id: %r" % run_id)
        try:
            doc = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise RunHistoryError(
                "undecodable run document %r: %s" % (run_id, err)
            )
        if not isinstance(doc, dict):
            raise RunHistoryError("run document %r is not an object" % run_id)
        return doc

    def load_reports(self, run_id):
        """The stored run's reports as :class:`Report` objects."""
        doc = self.load_run(run_id)
        return [Report.from_dict(entry) for entry in doc.get("reports") or ()]

    def latest_run_id(self):
        """The newest stored run id, or None."""
        ids = self.run_ids()
        return ids[-1] if ids else None

    def resolve_run_id(self, token):
        """A user-supplied run token to a stored id: exact ids pass
        through, ``latest``/``HEAD`` picks the newest run, and any
        unambiguous id prefix works.  Blank tokens are rejected: an
        empty prefix would match every stored run and, with exactly one
        run recorded, silently resolve to it."""
        if token is None or not token.strip():
            raise RunHistoryError(
                "blank run token (use 'latest', a run id, or an "
                "unambiguous id prefix)"
            )
        if token in ("latest", "HEAD"):
            run_id = self.latest_run_id()
            if run_id is None:
                raise RunHistoryError("no runs recorded yet")
            return run_id
        ids = self.run_ids()
        if token in ids:
            return token
        matches = [run_id for run_id in ids if run_id.startswith(token)]
        if len(matches) == 1:
            return matches[0]
        if matches:
            raise RunHistoryError(
                "ambiguous run id prefix %r (%d matches)"
                % (token, len(matches))
            )
        raise RunHistoryError("unknown run id: %r" % token)

    # -- diffing -------------------------------------------------------------

    def diff(self, base_id, head_id, triage=None, head_reports=None):
        """The structured diff between two runs.

        ``head_reports`` substitutes a live report list (the report
        server's ``head=current``) for a stored head run.  ``triage``
        is an optional :class:`repro.reports.triage.TriageStore`; new
        reports it suppresses land in ``suppressed`` instead of ``new``.

        Returns ``{"base", "head", "new", "resolved", "unresolved",
        "suppressed"}`` with report documents (not bare hashes) in each
        bucket, in their run's canonical order.
        """
        base_label = self.resolve_run_id(base_id)
        base_docs = self.load_run(base_label)["reports"]
        if head_reports is not None:
            if any(r.report_hash is None for r in head_reports):
                assign_report_hashes(head_reports)
            head_docs = [report.to_dict() for report in head_reports]
            head_label = "current"
        else:
            head_label = self.resolve_run_id(head_id)
            head_docs = self.load_run(head_label)["reports"]
        base_hashes = [doc.get("hash") for doc in base_docs]
        head_hashes = [doc.get("hash") for doc in head_docs]
        new, resolved, unresolved = diff_hash_sets(base_hashes, head_hashes)
        suppressed_hashes = set()
        if triage is not None:
            for doc in head_docs:
                if doc.get("hash") in new and triage.matches_dict(doc):
                    suppressed_hashes.add(doc.get("hash"))
            new -= suppressed_hashes
        self._count("diff_queries")
        return {
            "base": base_label,
            "head": head_label,
            "new": [d for d in head_docs if d.get("hash") in new],
            "resolved": [d for d in base_docs if d.get("hash") in resolved],
            "unresolved": [
                d for d in head_docs if d.get("hash") in unresolved
            ],
            "suppressed": [
                d for d in head_docs if d.get("hash") in suppressed_hashes
            ],
        }

    # -- maintenance ---------------------------------------------------------

    def delete_run(self, run_id):
        return self.backend.delete_many(RUN_TIER, [run_id])

    def prune(self, keep=100):
        """Drop the oldest runs beyond ``keep``; returns how many were
        deleted.

        ``keep=0`` deletes *every* stored run -- it is the explicit
        empty-the-history bound, not a no-op, so pass it deliberately.
        Negative keeps are rejected.
        """
        if keep < 0:
            raise RunHistoryError("prune keep must be >= 0 (got %d)" % keep)
        ids = self.run_ids()
        stale = ids[:-keep] if keep else ids
        if stale:
            self.backend.delete_many(RUN_TIER, stale)
        return len(stale)


def open_run_history(cache_dir=None, store_url=None, stats=None):
    """A RunHistory over the usual (cache_dir, store_url) backend wiring
    (:func:`repro.driver.store.open_store`)."""
    from repro.driver.store import open_store

    backend = open_store(cache_dir=cache_dir, store_url=store_url,
                         stats=stats)
    if backend is None:
        raise RunHistoryError(
            "run history needs --cache-dir or --store-url"
        )
    return RunHistory(backend, stats=stats)


# Re-exported for callers that want path math without a backend.
def run_dir_of(cache_dir):
    """Where a LocalStore keeps run frames under ``cache_dir``."""
    return os.path.join(cache_dir, "runs")
