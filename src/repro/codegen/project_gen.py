"""Multi-module project generation: several translation units with a
shared header, cross-file call chains, and file-scope statics -- the
workload shape the §6 two-pass driver exists for.
"""

import random

from repro.codegen.generator import BUG_KINDS, InjectedBug, generate_kernel_module

_SHARED_HEADER = """\
#ifndef GEN_SHARED_H
#define GEN_SHARED_H
#define GEN_MAGIC %d
struct device { int flags; int count; int lck; char *buf; };
#endif
"""


class GeneratedProject:
    """The generator output: {filename: source} plus ground truth."""

    def __init__(self, files, bugs, seed):
        self.files = files  # name -> source text
        self.bugs = bugs
        self.seed = seed

    def file_reader(self, path):
        """A Project file_reader serving this in-memory tree."""
        return self.files[path]

    def make_project(self):
        """Build a :class:`repro.driver.project.Project` over this tree."""
        from repro.driver.project import Project

        project = Project(file_reader=self.file_reader)
        return self.compile_into(project)

    def compile_into(self, project):
        """Run pass 1 for every module (header resolved via file_reader)."""
        for name in sorted(self.files):
            if name.endswith(".c"):
                project.compile_text(self.files[name], name)
        return project

    def __repr__(self):
        return "<GeneratedProject %d files, %d bugs, seed=%d>" % (
            len(self.files), len(self.bugs), self.seed,
        )


def generate_project(seed=0, n_modules=4, functions_per_module=12,
                     bug_rate=0.3, cross_calls=True):
    """Generate a project of ``n_modules`` C files.

    Each module gets its own kernel-style functions (with seeded bugs as
    in :func:`generate_kernel_module`), a file-scope static, and -- when
    ``cross_calls`` is set -- an exported entry point that calls into the
    next module, making interprocedural state flow across files.
    """
    rng = random.Random(seed)
    files = {"shared.h": _SHARED_HEADER % seed}
    bugs = []
    for index in range(n_modules):
        module_seed = rng.randrange(1 << 30)
        workload = generate_kernel_module(
            seed=module_seed,
            n_functions=functions_per_module,
            bug_rate=bug_rate,
        )
        # Prefix everything so names are unique across modules.
        prefix = "m%d_" % index
        source = workload.source
        for name in workload.function_names:
            source = source.replace(name, prefix + name)
        for bug in workload.bugs:
            bugs.append(InjectedBug(bug.kind, prefix + bug.function))

        chunks = ['#include "shared.h"\n']
        chunks.append("static int m%d_uses;\n" % index)
        # strip the module's own struct definition: it comes from shared.h
        source = "\n".join(
            line
            for line in source.splitlines()
            if not line.startswith("struct device {")
            and not line.startswith("/* generated")
        )
        chunks.append(source)
        if cross_calls and index + 1 < n_modules:
            chunks.append(
                "int m%d_entry(struct device *dev, int n) {\n"
                "    m%d_uses = m%d_uses + 1;\n"
                "    return m%d_entry(dev, n + 1);\n"
                "}\n" % (index, index, index, index + 1)
            )
        elif cross_calls:
            chunks.append(
                "int m%d_entry(struct device *dev, int n) {\n"
                "    m%d_uses = m%d_uses + 1;\n"
                "    return n;\n"
                "}\n" % (index, index, index)
            )
        files["module_%d.c" % index] = "\n".join(chunks)
    return GeneratedProject(files, bugs, seed)


def default_checkers():
    """The checker suite matched to the generator's bug kinds."""
    from repro.checkers import (
        free_checker,
        lock_checker,
        malloc_fail_checker,
        range_check_checker,
        user_pointer_checker,
    )

    return [
        free_checker(("kfree", "vfree")),
        lock_checker(),
        malloc_fail_checker(),
        range_check_checker(),
        user_pointer_checker(),
    ]


def score_project(generated, reports):
    """(hits, injected, false_positives) against the ground truth.

    A bug counts as found if any report lands in its function or (for
    the interprocedural kinds) in its helper.
    """
    buggy = {b.function for b in generated.bugs}
    helper_of = {b.function + "_discard": b.function for b in generated.bugs}
    hits = set()
    false_positives = []
    for report in reports:
        fn = report.function
        if fn in buggy:
            hits.add(fn)
        elif fn in helper_of:
            hits.add(helper_of[fn])
        else:
            false_positives.append(report)
    return len(hits), len(generated.bugs), false_positives
