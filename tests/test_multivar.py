"""Multiple variable-specific state variables (§3.1's "additional
components") -- two independent instance families in one extension."""

from conftest import messages, run_checker

from repro.metal import ANY_POINTER, compile_metal

# One checker tracking two rules at once: freed pointers (v) and held
# locks (l).  The families must not interfere.
TWO_VAR = """
sm two_rules {
 state decl any_pointer v;
 state decl any_pointer l;

 start:
    { kfree(v) } ==> v.freed
  | { lock(l) } ==> l.held
  ;

 v.freed: { *v } ==> v.stop,
    { err("use after free of %s", mc_identifier(v)); }
  ;

 l.held: { unlock(l) } ==> l.stop
  | $end_of_path$ ==> l.stop, { err("%s never unlocked", mc_identifier(l)); }
  ;
}
"""


class TestTwoFamilies:
    def test_both_rules_fire(self):
        code = (
            "int f(int *p, int *m) {\n"
            "    lock(m);\n"
            "    kfree(p);\n"
            "    return *p;\n"
            "}\n"
        )
        result = run_checker(code, compile_metal(TWO_VAR))
        assert messages(result) == [
            "m never unlocked",
            "use after free of p",
        ]

    def test_families_do_not_interfere(self):
        # the same object in both families: freeing a lock object tracks v
        # state without touching its l state.
        code = (
            "int f(int *m) {\n"
            "    lock(m);\n"
            "    kfree(m);\n"
            "    unlock(m);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, compile_metal(TWO_VAR))
        # lock is released -> no leak report; kfree'd m never dereferenced
        assert messages(result) == []

    def test_same_object_both_errors(self):
        code = (
            "int f(int *m) {\n"
            "    lock(m);\n"
            "    kfree(m);\n"
            "    return *m;\n"
            "}\n"
        )
        result = run_checker(code, compile_metal(TWO_VAR))
        assert messages(result) == [
            "m never unlocked",
            "use after free of m",
        ]

    def test_clean_code_is_clean(self):
        code = (
            "int f(int *p, int *m) {\n"
            "    lock(m);\n"
            "    *p = 1;\n"
            "    unlock(m);\n"
            "    kfree(p);\n"
            "    return 0;\n"
            "}\n"
        )
        assert messages(run_checker(code, compile_metal(TWO_VAR))) == []

    def test_interprocedural_two_families(self):
        code = (
            "void helper(int *p, int *m) { kfree(p); lock(m); }\n"
            "int root(int *p, int *m) {\n"
            "    helper(p, m);\n"
            "    unlock(m);\n"
            "    return *p;\n"
            "}\n"
        )
        result = run_checker(code, compile_metal(TWO_VAR))
        assert messages(result) == ["use after free of p"]

    def test_tuple_keys_distinguish_families(self):
        from repro.cfront.parser import parse_expression
        from repro.engine.state import VarInstance

        a = VarInstance("v", parse_expression("m"), "freed")
        b = VarInstance("l", parse_expression("m"), "freed")
        assert a.tuple_key("start") != b.tuple_key("start")
