/* Figure 1: the free checker -- use-after-free and double-free.
   Load with:  xgcc --metal free.metal <files>  */
sm free_checker {
 state decl any_pointer v;

 start: { kfree(v) } ==> v.freed ;

 v.freed: { *v } ==> v.stop,
    { err("using %s after free!", mc_identifier(v)); }
  | { kfree(v) } ==> v.stop,
    { err("double free of %s!", mc_identifier(v)); }
  ;
}
