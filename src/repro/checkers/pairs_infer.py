"""Statistical rule inference ("bugs as deviant behavior", used by §3.2
and §9).

"To infer whether routines a and b must be paired: (1) assume that they
must, (2) count the number of times they occur together and (3) count the
number of times they do not (rule violations).  The reported violations
are then sorted using a statistical significance test."

:func:`infer_pairs` scans every function's CFG paths counting, for each
candidate pair ``(a, b)``, occurrences of ``a`` followed by a call to
``b`` on the same path (examples) versus occurrences where ``b`` never
follows (counterexamples), then ranks the pairs by z-score.

:func:`make_pair_checker` turns an inferred (or known) pair into an
ordinary metal extension that reports the violations.
"""

from repro.cfront import astnodes as ast
from repro.metal import ANY_ARGUMENTS, Extension
from repro.ranking.statistical import rule_z_score


class InferredPair:
    """One candidate pairing rule with its evidence."""

    def __init__(self, first, second, examples, counterexamples):
        self.first = first
        self.second = second
        self.examples = examples
        self.counterexamples = counterexamples

    @property
    def z_score(self):
        return rule_z_score(self.examples, self.counterexamples)

    def __repr__(self):
        return "<pair %s/%s e=%d c=%d z=%.2f>" % (
            self.first, self.second, self.examples, self.counterexamples,
            self.z_score,
        )


def infer_pairs(callgraph, candidates=None, min_examples=2, max_paths_per_fn=256):
    """Infer likely-paired functions from a source base.

    ``candidates`` optionally restricts the first element of pairs
    considered (e.g. names containing "lock"); otherwise every called name
    is a candidate opener.  Returns InferredPair objects sorted by
    descending z-score -- the most reliable rules (and therefore the most
    likely-real violations) first.
    """
    traces = _all_traces(callgraph, max_paths_per_fn)

    # Phase 1: candidate pairs = (a, b) that co-occur in order somewhere.
    candidate_pairs = set()
    for trace in traces:
        for index, opener in enumerate(trace):
            if candidates is not None and opener not in candidates:
                continue
            for follower in set(trace[index + 1 :]):
                if follower != opener:
                    candidate_pairs.add((opener, follower))

    # Phase 2: per occurrence of a, did some b follow on this path?
    counts = {pair: [0, 0] for pair in candidate_pairs}
    for trace in traces:
        for index, opener in enumerate(trace):
            followers = set(trace[index + 1 :])
            for (a, b), slot in counts.items():
                if a != opener:
                    continue
                if b in followers:
                    slot[0] += 1
                else:
                    slot[1] += 1

    pairs = []
    for (a, b), (examples, counterexamples) in counts.items():
        if examples < min_examples:
            continue
        pairs.append(InferredPair(a, b, examples, counterexamples))
    pairs.sort(key=lambda p: (-p.z_score, p.first, p.second))
    return pairs


def _all_traces(callgraph, max_paths_per_fn):
    from repro.cfg.builder import build_cfg

    traces = []
    for name in sorted(callgraph.functions):
        cfg = build_cfg(callgraph.functions[name])
        traces.extend(_call_traces(cfg, max_paths_per_fn))
    return traces


def _call_traces(cfg, max_paths):
    """Call-name sequences along CFG paths (each block visited at most
    once per path; path count bounded)."""
    traces = []

    def walk(block, seen, trace):
        if len(traces) >= max_paths:
            return
        if block.index in seen:
            traces.append(trace)
            return
        seen = seen | {block.index}
        trace = list(trace)
        for item in block.items:
            if isinstance(item, ast.Node):
                for node in item.walk():
                    if isinstance(node, ast.Call):
                        callee = node.callee_name()
                        if callee:
                            trace.append(callee)
        if block.is_exit or not block.edges:
            traces.append(trace)
            return
        for edge in block.edges:
            walk(edge.target, seen, trace)

    walk(cfg.entry, frozenset(), [])
    return traces


def make_pair_checker(first, second, name=None):
    """An extension enforcing "every ``first()`` must be followed by a
    ``second()`` before the path ends" -- the checking half of inference.

    Uses the global state variable (the pairing is a program-wide
    property, like the interrupt checker) and counts examples and
    violations for statistical ranking (§9).
    """
    rule_id = "%s/%s" % (first, second)
    ext = Extension(name or ("pair_%s_%s" % (first, second)))
    ext.decl("args", ANY_ARGUMENTS)

    def opened(ctx):
        ctx.path_data["pair_open_site"] = ctx.location

    def closed(ctx):
        ctx.count_example(rule_id, ctx.path_data.get("pair_open_site"))

    def violated(ctx):
        ctx.err(
            "%s() called without a matching %s() before path end",
            first,
            second,
            rule_id=rule_id,
        )

    ext.transition("start", "{ %s(args) }" % first, to="opened", action=opened)
    ext.transition("opened", "{ %s(args) }" % second, to="start", action=closed)
    ext.transition("opened", "$end_of_path$", to="start", action=violated)
    return ext
