"""Tests for the sleep-under-lock (blocking) checker."""

from conftest import messages, run_checker

from repro.checkers import blocking_checker


class TestBlockingChecker:
    def test_blocking_under_spinlock(self):
        code = (
            "int f(int *l, char *d, char *s) {\n"
            "    spin_lock(l);\n"
            "    copy_from_user(d, s, 8);\n"
            "    spin_unlock(l);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, blocking_checker())
        assert any("may block" in m for m in messages(result))

    def test_blocking_outside_lock_is_fine(self):
        code = (
            "int f(int *l, char *d, char *s) {\n"
            "    copy_from_user(d, s, 8);\n"
            "    spin_lock(l);\n"
            "    spin_unlock(l);\n"
            "    return 0;\n"
            "}\n"
        )
        assert messages(run_checker(code, blocking_checker())) == []

    def test_nonblocking_under_lock_is_fine(self):
        code = (
            "int f(int *l) {\n"
            "    spin_lock(l);\n"
            "    do_math(3);\n"
            "    spin_unlock(l);\n"
            "    return 0;\n"
            "}\n"
        )
        assert messages(run_checker(code, blocking_checker())) == []

    def test_nesting_depth_tracked(self):
        code = (
            "int f(int *a, int *b) {\n"
            "    spin_lock(a);\n"
            "    spin_lock(b);\n"
            "    spin_unlock(b);\n"
            "    msleep(5);\n"  # still under a!
            "    spin_unlock(a);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, blocking_checker())
        assert any("may block" in m for m in messages(result))

    def test_fully_unlocked_then_blocking(self):
        code = (
            "int f(int *a, int *b) {\n"
            "    spin_lock(a);\n"
            "    spin_lock(b);\n"
            "    spin_unlock(b);\n"
            "    spin_unlock(a);\n"
            "    msleep(5);\n"
            "    return 0;\n"
            "}\n"
        )
        assert messages(run_checker(code, blocking_checker())) == []

    def test_interrupts_count_as_atomic(self):
        code = (
            "int f(void) {\n"
            "    cli();\n"
            "    schedule();\n"
            "    sti();\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, blocking_checker())
        assert any("may block" in m for m in messages(result))

    def test_interprocedural_atomic_context(self):
        code = (
            "int helper(char *d, char *s) { copy_from_user(d, s, 4);"
            " return 0; }\n"
            "int f(int *l, char *d, char *s) {\n"
            "    spin_lock(l);\n"
            "    helper(d, s);\n"
            "    spin_unlock(l);\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, blocking_checker())
        assert any("may block" in m for m in messages(result))

    def test_error_severity(self):
        code = "int f(int *l) { spin_lock(l); schedule(); spin_unlock(l); return 0; }"
        result = run_checker(code, blocking_checker())
        assert result.reports[0].severity == "ERROR"
        assert result.reports[0].rule_id == "sleep-in-atomic"
