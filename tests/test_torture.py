"""Front-end torture tests: every file in tests/data must parse,
round-trip through the unparser, build CFGs, and survive a full analysis
run without crashing."""

import glob
import os

import pytest

from repro.cfront import astnodes as ast
from repro.cfront.parser import parse
from repro.cfront.unparse import unparse
from repro.cfg.builder import build_cfg
from repro.checkers import free_checker, null_checker
from repro.engine.analysis import Analysis

DATA = os.path.join(os.path.dirname(__file__), "data")
FILES = sorted(glob.glob(os.path.join(DATA, "*.c")))


def read(path):
    with open(path) as handle:
        return handle.read()


@pytest.mark.parametrize("path", FILES, ids=[os.path.basename(p) for p in FILES])
class TestTortureFiles:
    def test_parses(self, path):
        unit = parse(read(path), path)
        assert unit.decls

    def test_roundtrips(self, path):
        first = parse(read(path), path)
        text = unparse(first)
        second = parse(text, path)
        assert ast.structural_key(first) == ast.structural_key(second)

    def test_cfgs_build(self, path):
        unit = parse(read(path), path)
        for decl in unit.functions():
            cfg = build_cfg(decl)
            assert cfg.entry is not None
            assert cfg.exit.is_exit

    def test_analysis_survives(self, path):
        unit = parse(read(path), path)
        result = Analysis([unit]).run([free_checker(), null_checker()])
        assert result.stats["points_visited"] > 0

    def test_deterministic_analysis(self, path):
        unit_a = parse(read(path), path)
        unit_b = parse(read(path), path)
        a = Analysis([unit_a]).run(free_checker())
        b = Analysis([unit_b]).run(free_checker())
        assert sorted(r.identity() for r in a.reports) == sorted(
            r.identity() for r in b.reports
        )


def test_corpus_is_nontrivial():
    assert len(FILES) >= 3
    total = sum(len(read(p).splitlines()) for p in FILES)
    assert total > 150
