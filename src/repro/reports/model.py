"""The structured report model.

A :class:`Report` is one rule violation: checker, message, severity,
structured locations (never pre-rendered strings), the §3.2 "why"
error-path steps, and the §9 ranking inputs.  Text output is *one
renderer* over the model (:meth:`Report.render_text`), kept byte-for-
byte identical to the classic ranked report lines; JSON is another
(:meth:`Report.to_dict` / :meth:`Report.from_dict` round-trip losslessly
through the renderer).

The model also carries *annotations*: values layered onto a report by
later stages -- the ranking stage records the report's rank and
severity class, the triage stage its triage verdict -- without the
stages ever owning or re-deriving the underlying report.
"""

from repro.cfront.source import UNKNOWN_LOCATION, Location

#: Severity annotations (§9): SECURITY ranks highest, then ERROR, then
#: unannotated, then MINOR.
SEVERITY_ORDER = {"SECURITY": 0, "ERROR": 1, None: 2, "MINOR": 3}


def location_to_dict(location):
    """A structured location document, or None."""
    if location is None:
        return None
    return {
        "file": location.filename,
        "line": location.line,
        "column": location.column,
    }


def location_from_dict(doc):
    if doc is None:
        return None
    return Location(doc["file"], doc["line"], doc["column"])


class Report:
    """One rule violation.

    Checkers report "not only what the error was, but also why" (§3.2);
    every report carries the inputs the ranking stage (§9) needs: the
    distance from where checking began, the number of conditionals
    crossed, the synonym chain length, and whether the error is local
    or interprocedural.
    """

    def __init__(
        self,
        checker,
        message,
        location=None,
        function=None,
        origin_location=None,
        conditionals=0,
        synonym_chain=0,
        call_chain=0,
        severity=None,
        rule_id=None,
        variable=None,
        trace=None,
    ):
        self.checker = checker
        self.message = message
        self.location = location or UNKNOWN_LOCATION
        self.function = function
        #: Where the extension started checking the property (§9 "Distance").
        self.origin_location = origin_location
        self.conditionals = conditionals
        self.synonym_chain = synonym_chain
        #: Length of the shortest call chain causing the error; 0 == local.
        self.call_chain = call_chain
        self.severity = severity
        #: The "common analysis fact" for grouping (§9), e.g. the freeing
        #: function's name for a use-after-free report.
        self.rule_id = rule_id
        #: Names of variables involved, for history matching (§8).
        self.variable = variable
        #: The "why" error path (§3.2): (event, location) steps since
        #: tracking began -- "checkers must report not only what the
        #: error was, but also why the error occurred."
        self.trace = list(trace or [])
        #: The stable report hash (repro.reports.hashing); assigned when
        #: the run's report set is finalized, None before that.
        self.report_hash = None
        #: Stage annotations: the ranking stage records ``rank`` (1-based
        #: position in the ranked output) and ``rank_class``; the triage
        #: stage records ``triage`` (the matching entry's document).
        self.annotations = {}

    @property
    def is_local(self):
        return self.call_chain == 0

    @property
    def distance(self):
        """Line distance between the error and where checking began."""
        if self.origin_location is None:
            return 0
        if self.origin_location.filename != self.location.filename:
            return 1000  # cross-file: strictly worse than any local span
        return abs(self.location.line - self.origin_location.line)

    def identity(self):
        """The dedup key: DFS path enumeration revisits program points."""
        return (
            self.checker,
            self.message,
            self.location.filename,
            self.location.line,
            self.location.column,
        )

    def history_key(self):
        """The cross-version matching key (§8 History): file name, function
        name, variable names, and the error itself -- fields "relatively
        invariant under edits (unlike, for example, line numbers)"."""
        return (self.checker, self.location.filename, self.function,
                self.variable, self.message)

    def __repr__(self):
        return "<%s %s:%d %s>" % (
            self.checker,
            self.location.filename,
            self.location.line,
            self.message,
        )

    # -- renderers -----------------------------------------------------------

    def format(self):
        """The classic one-line text rendering (byte-identity contract)."""
        parts = ["%s: %s: %s" % (self.location, self.checker, self.message)]
        if self.function:
            parts.append("in %s" % self.function)
        if self.origin_location is not None:
            parts.append("property began at %s" % (self.origin_location,))
        return " ".join(parts)

    def format_trace(self):
        """The multi-line why-trace for inspection (one step per line)."""
        lines = [self.format()]
        for event, location in self.trace:
            where = " at %s" % location if location is not None else ""
            lines.append("    %s%s" % (event, where))
        return "\n".join(lines)

    def render_text(self, trace=False):
        """Text is one renderer over the model."""
        return self.format_trace() if trace else self.format()

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        """The full structured document (lossless: ``from_dict`` of it
        renders byte-identically)."""
        doc = {
            "checker": self.checker,
            "message": self.message,
            "location": location_to_dict(self.location),
            "function": self.function,
            "origin_location": location_to_dict(self.origin_location),
            "conditionals": self.conditionals,
            "synonym_chain": self.synonym_chain,
            "call_chain": self.call_chain,
            "severity": self.severity,
            "rule_id": self.rule_id,
            "variable": self.variable,
            "path": [
                {"event": event, "location": location_to_dict(location)}
                for event, location in self.trace
            ],
            "hash": self.report_hash,
        }
        if self.annotations:
            doc["annotations"] = dict(self.annotations)
        return doc

    @classmethod
    def from_dict(cls, doc):
        report = cls(
            checker=doc["checker"],
            message=doc["message"],
            location=location_from_dict(doc.get("location")),
            function=doc.get("function"),
            origin_location=location_from_dict(doc.get("origin_location")),
            conditionals=doc.get("conditionals", 0),
            synonym_chain=doc.get("synonym_chain", 0),
            call_chain=doc.get("call_chain", 0),
            severity=doc.get("severity"),
            rule_id=doc.get("rule_id"),
            variable=doc.get("variable"),
            trace=[
                (step["event"], location_from_dict(step.get("location")))
                for step in doc.get("path", ())
            ],
        )
        report.report_hash = doc.get("hash")
        report.annotations = dict(doc.get("annotations") or {})
        return report
