"""Statistical ranking (§9).

"We rank errors based on the reliability of the rules that caused them
using the z-statistic for proportions ...

    z(n, e) = (e/n - p0) / sqrt(p0 * (1 - p0) / n)

Our null hypothesis is that a rule is obeyed or violated at random ...
hence p0 = 0.5.  ...  High values indicate a higher probability that the
counterexamples found are indeed violations of a valid rule, and are,
therefore, most likely errors."

Also implements *code ranking*: ranking functions by how cleanly they obey
a rule elsewhere ("the highest ranked functions had a large number of
successful acquire/release pairs with only a few errors").
"""

import math


def z_statistic(n, e, p0=0.5):
    """The z-statistic for proportions, exactly as printed in the paper."""
    if n <= 0:
        return 0.0
    return (e / n - p0) / math.sqrt(p0 * (1 - p0) / n)


def rule_z_score(examples, counterexamples, p0=0.5):
    """z-score of one rule from its example/counterexample counts.

    ``e`` is the number of times the rule was followed, ``c`` the number of
    violations; ``n = e + c`` (§9, free-checker discussion).
    """
    n = examples + counterexamples
    return z_statistic(n, examples, p0)


#: Feasibility-verdict confidence tiers (repro.refine): a confirmed
#: error path is stronger evidence than an unrefined one, an infeasible
#: path weaker.  Reports without a verdict sit in the middle tier, so
#: runs that never refined rank exactly as before.
_VERDICT_CONFIDENCE = {"confirmed": 0, "infeasible": 2}


def verdict_confidence(report):
    """0 (confirmed) / 1 (no or unknown verdict) / 2 (infeasible)."""
    doc = report.annotations.get("feasibility")
    verdict = doc.get("verdict") if isinstance(doc, dict) else None
    return _VERDICT_CONFIDENCE.get(verdict, 1)


def rank_by_rule_reliability(reports, log, p0=0.5):
    """Sort reports by descending z-score of the rule that produced them.

    ``log`` is the :class:`repro.engine.errors.ErrorLog` holding the
    example/counterexample counters the checkers accumulated.  Reports from
    rules that are almost always followed float to the top; reports from
    rules the analysis mishandles (violated half the time) sink.

    Refinement verdicts act as a confidence feature ahead of the
    z-score: ``confirmed`` reports outrank unrefined ones, which outrank
    ``infeasible`` ones.  Unrefined runs have every report in the middle
    tier, leaving the historical pure-z order untouched.
    """
    def key(report):
        examples, counterexamples = log.rule_counts(report.rule_id)
        return (verdict_confidence(report),
                -rule_z_score(examples, counterexamples, p0))

    return sorted(reports, key=key)


def rule_reliability_table(log, p0=0.5):
    """(rule_id, examples, counterexamples, z) rows, best rules first."""
    rules = set(log.examples) | set(log.counterexamples)
    rows = []
    for rule_id in rules:
        examples, counterexamples = log.rule_counts(rule_id)
        rows.append(
            (rule_id, examples, counterexamples,
             rule_z_score(examples, counterexamples, p0))
        )
    rows.sort(key=lambda row: -row[3])
    return rows


def rank_functions_by_code(per_function_counts, p0=0.5):
    """Code ranking (§9): ``per_function_counts`` maps function name to
    ``(correct_pairs, mismatches)``; returns functions most-likely-buggy
    first -- "a large number of successful acquire/release pairs with only
    a few errors"."""
    rows = []
    for name, (examples, counterexamples) in per_function_counts.items():
        if counterexamples == 0:
            continue  # nothing to inspect
        rows.append((name, examples, counterexamples,
                     rule_z_score(examples, counterexamples, p0)))
    rows.sort(key=lambda row: -row[3])
    return rows
