"""Block, suffix, and function summaries (§5.2, §6.2, Figures 5 and 6).

A block summary records, as directed edges between state tuples, how each
SM that reaches the block is transitioned while traversing it:

* transition edges ``(s, v:t->vs) -> (s', v:t->vs')`` -- one per state
  tuple that reaches the block (possibly the identity);
* add edges ``(s, v:t->unknown) -> (s', v:t->vs')`` -- a new instance was
  created in the block; the ``unknown`` start marks that the edge applies
  only when nothing is known about ``t`` at block entry;
* global edges ``(s, <>) -> (s', <>)`` -- how the block updates the global
  instance; relaxation matches these against add-edge starts.

A *suffix summary* for block ``b`` holds add/transition edges from ``b`` to
the function's exit; the *function summary* is the entry block's suffix
summary.  Suffix summaries are computed by :func:`relax`, a backwards walk
over the path's backtrace (Figure 6).
"""

from repro.metal.sm import PLACEHOLDER, STOP
from repro.engine.state import UNKNOWN, describe_tuple

TRANSITION = "transition"
ADD = "add"

#: Version of the persisted summary/artifact format.  Bump whenever the
#: engine's observable behaviour changes (report fields, traversal
#: semantics, edge encoding): persisted frames from other versions stop
#: matching and are re-derived.
SUMMARY_VERSION = "2"


class Edge:
    """One summary edge.

    ``end_snapshot`` is a :class:`VarInstance` copy frozen at block exit
    (None for placeholder/global edges); function-summary application uses
    it to recreate instance state (value + data) in the caller.

    ``relax_only`` marks the special global edges §6.2 requires every
    block to record ("how that block updates the global instance") when
    the placeholder tuple was NOT actually part of the state that reached
    the block: they exist so add-edge relaxation can match their global
    values, but they are not cache entries -- the placeholder tuple is
    "ignored whenever active_vars is nonempty" (§5.3).
    """

    __slots__ = ("kind", "start", "end", "end_snapshot", "relax_only")

    def __init__(self, kind, start, end, end_snapshot=None, relax_only=False):
        self.kind = kind
        self.start = start
        self.end = end
        self.end_snapshot = end_snapshot
        self.relax_only = relax_only

    def key(self):
        return (self.kind, self.start, self.end, self.relax_only)

    @property
    def is_global_only(self):
        return self.start[1] == PLACEHOLDER and self.end[1] == PLACEHOLDER

    @property
    def ends_in_stop(self):
        rest = self.end[1]
        return rest != PLACEHOLDER and rest[2] == STOP

    def describe(self):
        return "%s --> %s" % (describe_tuple(self.start), describe_tuple(self.end))

    def __repr__(self):
        return "Edge(%s, %s)" % (self.kind, self.describe())


class EdgeSet:
    """A deduplicated set of edges with start-tuple indexing."""

    def __init__(self):
        self._edges = {}
        self._by_start = {}
        self._by_end = {}

    def add(self, edge):
        key = edge.key()
        if key in self._edges:
            return False
        self._edges[key] = edge
        self._by_start.setdefault(edge.start, []).append(edge)
        self._by_end.setdefault(edge.end, []).append(edge)
        return True

    def with_start(self, start):
        return self._by_start.get(start, ())

    def with_end(self, end):
        return self._by_end.get(end, ())

    def has_start(self, start):
        return start in self._by_start

    def __iter__(self):
        return iter(self._edges.values())

    def __len__(self):
        return len(self._edges)

    def __contains__(self, edge):
        return edge.key() in self._edges


class BlockSummary:
    """The block summary plus the suffix summary for one basic block."""

    def __init__(self, block):
        self.block = block
        self.edges = EdgeSet()  # block summary
        self.suffix = EdgeSet()  # suffix summary
        # Entry states of completed runs, as (gstate, frozenset of
        # non-placeholder tuples).  A cache hit needs a prior run whose
        # entry was a *subset* of the current state: only then were all
        # the creations the current state could still make (its unknown
        # objects) possible in the recorded run.  Tuple coverage alone
        # cannot see this -- "unknown" is the absence of a tuple.
        self.entry_states = set()

    def saw_subset_entry(self, gstate, tuples):
        """Did some completed run enter with ``gstate`` and a subset of
        ``tuples``?  (``tuples`` excludes the placeholder.)"""
        if (gstate, tuples) in self.entry_states:
            return True
        return any(
            g == gstate and prior <= tuples
            for g, prior in self.entry_states
        )

    def covers(self, start_tuple):
        """Does the cache contain this state tuple (as a transition edge
        start)?  Used by ``cache_misses`` (§5.3).  Relax-only global edges
        are not cache entries."""
        for edge in self.edges.with_start(start_tuple):
            if edge.kind == TRANSITION and not edge.relax_only:
                return True
        return False

    def describe(self, suffix=False):
        edges = self.suffix if suffix else self.edges
        shown = [e for e in edges if not e.is_global_only]
        if not shown:
            shown = [e for e in edges if e.is_global_only][:1]
        return ", ".join(sorted(e.describe() for e in shown))


class SummaryTable:
    """Summaries for every (block, extension) pair of one analysis run."""

    def __init__(self):
        self._by_block = {}

    def get(self, block):
        summary = self._by_block.get(id(block))
        if summary is None:
            summary = BlockSummary(block)
            self._by_block[id(block)] = summary
        return summary

    def __len__(self):
        return len(self._by_block)


def make_transition_edge(start_gstate, start_instance, end_gstate, end_instance):
    """Build a transition edge from an entry/exit instance pair.

    ``end_instance`` may be None to mean the instance was stopped.
    """
    if start_instance is None:
        start = (start_gstate, PLACEHOLDER)
        end = (end_gstate, PLACEHOLDER)
        return Edge(TRANSITION, start, end, None)
    start = start_instance.tuple_key(start_gstate)
    if end_instance is None:
        end = (
            end_gstate,
            (start_instance.var_name, start_instance.obj_key, STOP, None),
        )
        return Edge(TRANSITION, start, end, None)
    return Edge(
        TRANSITION, start, end_instance.tuple_key(end_gstate), end_instance.copy()
    )


def make_add_edge(start_gstate, end_gstate, end_instance):
    """Build an add edge for an instance created inside the block."""
    start = (start_gstate, (end_instance.var_name, end_instance.obj_key, UNKNOWN, None))
    return Edge(ADD, start, end_instance.tuple_key(end_gstate), end_instance.copy())


def unknown_start(gstate, edge):
    """Rewrite an add edge's start for a new entry global value."""
    rest = edge.start[1]
    return (gstate, rest)


def relax(backtrace, table, local_filter=None):
    """Compute suffix summaries along a finished (or aborted) path (Fig. 6).

    ``backtrace`` is the list of blocks on the current path, first to last;
    the last entry is either the function's exit block or the block where a
    cache hit aborted the path (whose suffix edges then seed the walk).

    ``local_filter(obj_key_tree_names)`` -- actually a predicate over an
    edge -- drops edges that mention function-local objects: "the analysis
    would never use these edges" (Fig. 5 caption).

    Edges ending in a ``stop`` tuple are intentionally omitted (§6.2).
    """
    if not backtrace:
        return
    last = table.get(backtrace[-1])
    if backtrace[-1].is_exit:
        # "ep's suffix summary equals its block summary."
        for edge in last.edges:
            _add_suffix(last, edge, local_filter)

    for index in range(len(backtrace) - 2, -1, -1):
        prev = table.get(backtrace[index])
        cur = table.get(backtrace[index + 1])
        grew = False
        for suffix_edge in list(cur.suffix):
            if suffix_edge.kind == ADD:
                # Match the add start against prev's global edges: "these
                # special transition edges will match the initial state of
                # an add edge if the values of the global instance match."
                for prev_edge in prev.edges:
                    if not prev_edge.is_global_only:
                        continue
                    if prev_edge.end[0] != suffix_edge.start[0]:
                        continue
                    new_edge = Edge(
                        ADD,
                        unknown_start(prev_edge.start[0], suffix_edge),
                        suffix_edge.end,
                        suffix_edge.end_snapshot,
                    )
                    grew |= _add_suffix(prev, new_edge, local_filter)
            else:
                # "For a suffix transition edge, et, the algorithm looks for
                # an add edge or transition edge in prev's block summary
                # whose end tuple is equivalent to et's start tuple."
                for prev_edge in prev.edges.with_end(suffix_edge.start):
                    new_edge = Edge(
                        prev_edge.kind,
                        prev_edge.start,
                        suffix_edge.end,
                        suffix_edge.end_snapshot,
                        relax_only=prev_edge.relax_only or suffix_edge.relax_only,
                    )
                    grew |= _add_suffix(prev, new_edge, local_filter)
        # The paper stops early "when no new edges are propagated (i.e.,
        # the previous block's summary does not grow)".  That short-cut is
        # only safe when every block on the backtrace was seeded by this
        # same walk; when two paths share a tail (the second path's walk
        # finds the shared blocks already populated), breaking here would
        # leave the divergent prefix without its suffix edges.  We walk the
        # whole backtrace instead -- it is bounded by the path length.
        del grew


def _add_suffix(summary, edge, local_filter):
    if edge.ends_in_stop:
        return False
    if local_filter is not None and local_filter(edge):
        return False
    return summary.suffix.add(edge)


# -- persistent, content-addressable summaries ---------------------------------


class FunctionSummary:
    """A function summary detached from live engine state (§6.2 as data).

    :class:`SummaryTable` keys summaries by in-memory block identity,
    which dies with the run.  A ``FunctionSummary`` snapshots the entry
    block's suffix summary -- the paper's function summary -- into plain
    edge records keyed by state tuples, so it pickles, round-trips
    through the driver's summary store, and can be compared across runs.
    """

    __slots__ = ("function", "extension", "fingerprint", "edges")

    def __init__(self, function, extension, fingerprint, edges):
        self.function = function
        self.extension = extension
        self.fingerprint = fingerprint
        self.edges = list(edges)  # (kind, start, end, snapshot, relax_only)

    @classmethod
    def snapshot(cls, function, extension, fingerprint, entry_summary):
        """Freeze a live entry-block :class:`BlockSummary`'s suffix."""
        edges = [
            (
                edge.kind,
                edge.start,
                edge.end,
                edge.end_snapshot.copy() if edge.end_snapshot is not None
                else None,
                edge.relax_only,
            )
            for edge in entry_summary.suffix
        ]
        edges.sort(key=lambda item: (item[0], repr(item[1]), repr(item[2])))
        return cls(function, extension, fingerprint, edges)

    def edge_set(self):
        """Rebuild a live :class:`EdgeSet` from the frozen records."""
        edges = EdgeSet()
        for kind, start, end, snapshot, relax_only in self.edges:
            edges.add(Edge(kind, start, end, snapshot, relax_only=relax_only))
        return edges

    def __getstate__(self):
        return {
            "function": self.function,
            "extension": self.extension,
            "fingerprint": self.fingerprint,
            "edges": self.edges,
        }

    def __setstate__(self, state):
        for name in self.__slots__:
            setattr(self, name, state[name])

    def __len__(self):
        return len(self.edges)

    def __repr__(self):
        return "<FunctionSummary %s/%s %d edges>" % (
            self.extension, self.function, len(self.edges),
        )


class RootArtifact:
    """One root's complete, self-contained analysis outcome under one
    extension: the persistence unit of incremental re-analysis.

    Captured with root-scoped deduplication
    (:meth:`repro.engine.errors.ErrorLog.push_scope`), so the recorded
    reports and example/counterexample sites are this root's independent
    contribution -- replaying every root's artifact in serial order
    through a fresh log reproduces a cold run's output byte for byte,
    no matter which subset of roots was actually re-analyzed.

    ``clean`` is False when the root was degraded (budget blown, error
    recovered) -- degraded outcomes depend on budgets and wall clock, so
    the driver never persists them.
    """

    __slots__ = ("ext_index", "extension", "root", "reports", "examples",
                 "counterexamples", "degraded", "clean", "summary", "delta")

    def __init__(self, ext_index, extension, root, reports, examples,
                 counterexamples, degraded, clean, summary=None, delta=None):
        self.ext_index = ext_index
        self.extension = extension
        self.root = root
        self.reports = list(reports)
        self.examples = {k: set(v) for k, v in examples.items()}
        self.counterexamples = {k: set(v) for k, v in counterexamples.items()}
        self.degraded = list(degraded)
        self.clean = clean
        #: Optional :class:`FunctionSummary` snapshot of the root's own
        #: function summary at the end of its traversal.
        self.summary = summary
        #: Optional :class:`repro.engine.deltas.RootDelta`: the net
        #: cross-root state (annotations, user globals) this root wrote,
        #: plus its coarse read set.  ``None`` means "not captured".
        self.delta = delta

    def replay_into(self, log):
        """Append this root's contribution to a merge log (dedup applies
        at the merge, exactly as a serial run would apply it)."""
        for report in self.reports:
            log.add(report)
        for rule_id, sites in self.examples.items():
            log.examples.setdefault(rule_id, set()).update(sites)
        for rule_id, sites in self.counterexamples.items():
            log.counterexamples.setdefault(rule_id, set()).update(sites)

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        self.delta = None  # absent in pre-delta pickles
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self):
        return "<RootArtifact %s/%s %d reports%s>" % (
            self.extension, self.root, len(self.reports),
            "" if self.clean else " (degraded)",
        )
