"""§9 ranking: generic criteria, severity stratification, statistical
rule ranking (the "fifty errors per hundred callsites" anecdote), and
code ranking for lock wrappers.
"""

import random

from repro.cfront.parser import parse
from repro.checkers import free_checker, lock_checker
from repro.codegen.generator import generate_wrapper_module
from repro.driver.project import Project
from repro.engine.analysis import Analysis
from repro.ranking import (
    generic_rank,
    rank_by_rule_reliability,
    rank_functions_by_code,
    stratify,
)
from repro.ranking.statistical import rule_reliability_table


def _flaky_free_codebase(n_good=40, n_flagged=12, seed=3):
    """The §9 statistical-ranking anecdote, synthesized.

    ``kfree`` is a real deallocator: callers rarely touch the pointer
    afterwards (a few genuine bugs).  ``maybe_free`` only frees depending
    on its second argument, but a naive flow-insensitive list says it
    always frees -- so 'errors' involving it fire about half the time.
    The z-ranking must push the kfree reports to the top.
    """
    rng = random.Random(seed)
    chunks = []
    genuine = []
    for i in range(n_good):
        buggy = i % 13 == 5
        use = "    return *p;\n" if buggy else "    return 0;\n"
        if buggy:
            genuine.append("good_%d" % i)
        chunks.append(
            "int good_%d(int *p) {\n    kfree(p);\n%s}\n" % (i, use)
        )
    for i in range(n_flagged):
        # maybe_free modeled as a freeing function: every other caller
        # "violates" the bogus always-frees rule.
        use = "    return *p;\n" if i % 2 == 0 else "    return 0;\n"
        chunks.append(
            "int flagged_%d(int *p) {\n    maybe_free(p);\n%s}\n" % (i, use)
        )
    return "\n".join(chunks), genuine


def test_statistical_ranking_pushes_real_errors_up(benchmark):
    code, genuine = _flaky_free_codebase()
    checker = free_checker(("kfree", "maybe_free"))

    def run():
        result = Analysis([parse(code, "flaky.c")]).run(checker)
        ranked = rank_by_rule_reliability(result.reports, result.log)
        return result, ranked

    result, ranked = benchmark(run)
    table = rule_reliability_table(result.log)

    print("\nrule reliability (the §9 free-checker anecdote):")
    for rule_id, examples, violations, z in table:
        print("  %-12s e=%3d c=%3d z=%6.2f" % (rule_id, examples, violations, z))

    kfree_positions = [
        i for i, r in enumerate(ranked) if r.rule_id == "kfree"
    ]
    maybe_positions = [
        i for i, r in enumerate(ranked) if r.rule_id == "maybe_free"
    ]
    print("  kfree report ranks: %s" % kfree_positions)
    print("  maybe_free report ranks: %s" % maybe_positions)

    # "all of the real errors went to the top and the errors caused by
    # functions the analysis could not handle were pushed to the bottom."
    assert max(kfree_positions) < min(maybe_positions)
    z_by_rule = {row[0]: row[3] for row in table}
    assert z_by_rule["kfree"] > z_by_rule["maybe_free"]


def test_generic_ranking_orders_by_difficulty(benchmark):
    code = (
        "int local_near(int *p) { kfree(p); return *p; }\n"
        "int local_far(int *p, int a, int b, int c) {\n"
        "    kfree(p);\n"
        "    if (a) a = 1;\n"
        "    if (b) b = 2;\n"
        "    if (c) c = 3;\n"
        "    return *p;\n"
        "}\n"
        "int callee(int *p) { return *p; }\n"
        "int interprocedural(int *p) { kfree(p); return callee(p); }\n"
    )

    def run():
        result = Analysis([parse(code, "rank.c")]).run(free_checker())
        return generic_rank(result.reports)

    ranked = benchmark(run)
    order = [r.function for r in ranked]
    print("\ngeneric ranking order: %s" % order)
    assert order.index("local_near") < order.index("local_far")
    # the interprocedural report surfaces inside the callee, one call deep
    assert order.index("local_far") < order.index("callee")


def test_severity_stratification(benchmark):
    from repro.checkers import range_check_checker, malloc_fail_checker

    code = (
        "int sec(int c) { int t[4]; int i = get_user_int(c); t[i] = 1;"
        " return 0; }\n"
        "int minor(int n) { int *p = kmalloc(n); *p = 1; return 0; }\n"
    )

    def run():
        unit = parse(code, "sev.c")
        analysis = Analysis([unit])
        result = analysis.run([range_check_checker(), malloc_fail_checker()])
        return stratify(result.reports)

    ranked = benchmark(run)
    severities = [r.severity for r in ranked]
    print("\nseverity stratification: %s" % severities)
    assert severities == ["SECURITY", "MINOR"]


def test_code_ranking_for_lock_wrappers(benchmark):
    # "The major source of false positives for this extension was wrapper
    # functions that either always acquired or always released locks" --
    # code ranking separates them from users with mostly-correct sections.
    source, wrappers, real_bugs = generate_wrapper_module(seed=5, n_users=21)

    def run():
        from repro.engine.analysis import AnalysisOptions
        from repro.cfront.unparse import unparse

        project = Project()
        project.compile_text(source, "wrap.c")
        # Intraprocedural, every function a root: exactly the setting in
        # which wrappers look broken every single time (§9).
        analysis = project.analysis(AnalysisOptions(interprocedural=False))
        result = analysis.run(lock_checker())

        violations = {}
        for report in result.reports:
            violations[report.function] = violations.get(report.function, 0) + 1
        counts = {}
        for unit in project.units:
            for fn in unit.functions():
                text = unparse(fn)
                acquire_sites = text.count("lock(") - text.count("unlock(")
                c = violations.get(fn.name, 0)
                e = max(0, acquire_sites - c)
                counts[fn.name] = (e, c)
        return counts

    counts = benchmark(run)
    rows = rank_functions_by_code(counts)
    names = [row[0] for row in rows]
    print("\ncode ranking (most-likely-real-bug first):")
    for name, e, c, z in rows[:4]:
        print("  %-16s e=%d c=%d z=%5.2f" % (name, e, c, z))
    print("  ... wrappers at the bottom: %s" % names[-2:])
    # the buggy users (many correct sections, one miss) rank above the
    # wrappers (zero correct sections, flagged every time).
    assert set(names[-2:]) == {"helper_acquire", "helper_release"}
    for bug in real_bugs:
        assert names.index(bug) < names.index("helper_acquire")
