"""The xgcc analysis engine (§5-§6, §8)."""

from repro.engine.state import SMInstance, VarInstance, state_tuples
from repro.engine.errors import ErrorReport
from repro.engine.analysis import Analysis, AnalysisOptions, AnalysisResult

__all__ = [
    "SMInstance",
    "VarInstance",
    "state_tuples",
    "ErrorReport",
    "Analysis",
    "AnalysisOptions",
    "AnalysisResult",
]
