/* Figure 3: the lock checker -- unpaired acquire/release and the
   path-specific trylock transition. */
sm lock_checker {
 state decl any_pointer l;

 start:
    { trylock(l) } ==> true=l.locked, false=l.stop
  | { lock(l) } ==> l.locked
  | { unlock(l) } ==> l.stop,
    { err("releasing lock %s without acquiring it!", mc_identifier(l)); }
  ;

 l.locked:
    { unlock(l) } ==> l.stop
  | { lock(l) } ==> l.locked,
    { err("double acquire of lock %s!", mc_identifier(l)); }
  | { trylock(l) } ==> l.locked,
    { err("double acquire of lock %s!", mc_identifier(l)); }
  | $end_of_path$ ==> l.stop,
    { err("lock %s never released!", mc_identifier(l)); }
  ;
}
