"""Global-state machine behaviours: path-specific global transitions,
direct gstate manipulation from actions, and caching of global states."""

from conftest import messages, run_checker

from repro.metal import Extension


def try_disable_checker():
    """A global SM with a path-specific transition: try_disable() returns
    1 when it managed to disable interrupts."""
    ext = Extension("try_disable")
    ext.transition("enabled", "{ try_disable() }",
                   true_to="disabled", false_to="enabled")
    ext.transition("disabled", "{ enable() }", to="enabled")
    ext.transition(
        "disabled",
        "$end_of_path$",
        to="enabled",
        action=lambda ctx: ctx.err("path ends with interrupts disabled"),
    )
    return ext


class TestGlobalPathSplit:
    def test_true_path_disabled(self):
        code = (
            "int f(void) {\n"
            "    if (try_disable()) {\n"
            "        return 1;\n"  # disabled at exit!
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_checker(code, try_disable_checker())
        assert messages(result) == ["path ends with interrupts disabled"]

    def test_true_path_reenabled(self):
        code = (
            "int f(void) {\n"
            "    if (try_disable()) {\n"
            "        enable();\n"
            "        return 1;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        assert messages(run_checker(code, try_disable_checker())) == []

    def test_negated_condition(self):
        code = (
            "int f(void) {\n"
            "    if (!try_disable())\n"
            "        return 0;\n"
            "    enable();\n"
            "    return 1;\n"
            "}\n"
        )
        assert messages(run_checker(code, try_disable_checker())) == []

    def test_unbranched_call_forks(self):
        # outcome ignored: both global outcomes must be explored
        code = "int f(void) { try_disable(); return 0; }"
        result = run_checker(code, try_disable_checker())
        assert messages(result) == ["path ends with interrupts disabled"]


class TestDirectGlobalManipulation:
    def test_action_sets_gstate(self):
        # §3.2: "Extensions may also update the value of the global
        # instance directly within an escape to C code."
        ext = Extension("manual")

        def maybe_escalate(ctx):
            from repro.metal.callouts import mc_constant_value

            level = mc_constant_value(ctx.binding("e"))
            if level is not None and level > 2:
                ctx.set_global_state("alert")

        from repro.metal import ANY_EXPR

        ext.decl("e", ANY_EXPR)
        ext.transition("start", "{ set_level(e) }", action=maybe_escalate)
        ext.transition(
            "alert",
            "{ risky() }",
            action=lambda ctx: ctx.err("risky() called at high level"),
        )

        hot = "int f(void) { set_level(3); risky(); return 0; }"
        cold = "int f(void) { set_level(1); risky(); return 0; }"
        assert messages(run_checker(hot, ext)) == ["risky() called at high level"]
        ext2 = Extension("manual2")  # fresh copy for the second run
        ext2.decl("e", ANY_EXPR)
        ext2.transition("start", "{ set_level(e) }", action=maybe_escalate)
        ext2.transition(
            "alert", "{ risky() }",
            action=lambda ctx: ctx.err("risky() called at high level"),
        )
        assert messages(run_checker(cold, ext2)) == []


class TestGlobalStateCaching:
    def test_different_gstates_both_explored(self):
        code = (
            "int helper(void) { risky(); return 0; }\n"
            "int root(int c) {\n"
            "    if (c)\n"
            "        arm();\n"
            "    helper();\n"
            "    return 0;\n"
            "}\n"
        )
        ext = Extension("armed")
        from repro.metal import ANY_ARGUMENTS

        ext.decl("args", ANY_ARGUMENTS)
        ext.transition("start", "{ arm() }", to="armed")
        ext.transition(
            "armed", "{ risky() }",
            action=lambda ctx: ctx.err("risky while armed"),
        )
        result = run_checker(code, ext)
        # helper analyzed in both global states; only the armed one errs
        assert messages(result) == ["risky while armed"]
