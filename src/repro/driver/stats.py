"""Driver observability: per-phase timers, counters, and worker tallies.

The two-pass driver (§6) records where wall-clock goes (preprocess /
parse / emit in pass 1, cfg / traverse in pass 2), how the persistent AST
cache behaves (hits vs misses vs fresh parses), and how work spread over
worker processes.  ``xgcc --stats`` prints the summary; ``--stats-json``
dumps it for the benchmarks.

Timer convention: phase timers are summed across workers, so on a
multi-core run they exceed the wall-clock entries (``pass1_wall``,
``pass2_wall``) -- they measure aggregate CPU effort, the wall entries
measure elapsed time.
"""

import json
import time
from contextlib import contextmanager

#: Version of the --stats-json document shape (docs/DRIVER.md, "Stats
#: schema").  Bump whenever a top-level key is added, removed, or changes
#: meaning, so downstream consumers (benchmarks, CI lanes) can detect
#: skew instead of misreading.  3: ``annotation_delta_*`` counters
#: (incremental global checkers), ``manifest_merges``, ``gc_*`` eviction
#: counters, and explicit replayed-vs-analyzed provenance in the engine
#: stats of incremental runs.  4: the daemon counters and timers
#: (``daemon_requests``, ``daemon_analyze_*``, ``daemon_bursts``,
#: ``daemon_*_errors``, ``daemon_analyze`` / ``daemon_fingerprint``
#: phases), the warm-state pin counters (``manifest_pin_hits``,
#: ``summary_memory_hits``, ``units_adopted``), and
#: ``manifest_lock_fallbacks`` (lockfile fallback where ``fcntl`` is
#: unavailable).  5: the compiled-matcher counters in the engine stats
#: (``matcher_table_hits``, ``matcher_miss_memo_hits``,
#: ``matcher_fallbacks``, ``matcher_compile_s`` plus per-extension
#: ``matcher_compile_s:<name>`` timers; docs/MATCHER.md).  6: the
#: shared artifact-store counters (``store_round_trips``,
#: ``store_batch_keys``, ``store_cas_conflicts``, ``store_overlay_hits``,
#: ``store_fallbacks``, ``store_degraded``; docs/STORE.md).  7: the
#: structured-report counters (docs/REPORTS.md): run history
#: (``report_runs_recorded``, ``report_run_record_errors``,
#: ``report_json_dumps``), diffing (``diff_queries``), triage
#: (``triage_suppressed``, ``triage_annotated``, ``triage_posts``,
#: ``triage_load_errors``), and the HTTP report server
#: (``report_server_requests``, ``report_server_errors``).  8: the
#: path-feasibility refinement counters (docs/REFINE.md):
#: ``refine_cache_hits`` (verdicts replayed from the store),
#: ``refine_confirmed`` / ``refine_infeasible`` / ``refine_unknown``
#: (per-verdict tallies), ``refine_budget_hits`` (verdicts degraded to
#: unknown by a blown enumeration budget or injected fault), and
#: ``report_run_prune_errors`` (failed ``--prune-runs`` sweeps).
SCHEMA_VERSION = 8


class DriverStats:
    """Counters + phase timers + per-worker task counts for one driver run."""

    def __init__(self):
        self.counters = {}
        self.timers = {}  # phase name -> total seconds
        self.workers = {}  # pid -> tasks completed
        #: Structured graceful-degradation records: every recovered
        #: failure (worker crash, evicted cache entry, abandoned root,
        #: skipped unit) leaves one entry here, so --stats-json
        #: enumerates exactly what a run survived.
        self.degradations = []

    # -- counters -----------------------------------------------------------

    def add(self, name, amount=1):
        self.counters[name] = self.counters.get(name, 0) + amount

    def count(self, name):
        return self.counters.get(name, 0)

    # -- timers -------------------------------------------------------------

    @contextmanager
    def phase(self, name):
        """Time a phase; nests and repeats accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name, seconds):
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def merge_timings(self, timings):
        """Fold a worker's ``{phase: seconds}`` dict into this one."""
        for name, seconds in (timings or {}).items():
            self.add_time(name, seconds)

    # -- workers ------------------------------------------------------------

    def count_worker_task(self, pid, amount=1):
        self.workers[pid] = self.workers.get(pid, 0) + amount

    # -- degradations -------------------------------------------------------

    def record_degradation(self, kind, detail, **extra):
        """Record one survived failure.

        ``kind`` buckets the failure: "worker" (crashed/hung worker
        recovered by retry or in-process fallback), "cache" (corrupt
        entry evicted and re-parsed), "root" (engine abandoned one root),
        "unit" (translation unit skipped under keep_going), "pickle"
        (serial fallback because work would not ship to workers).
        """
        entry = {"kind": kind, "detail": detail}
        entry.update(extra)
        self.degradations.append(entry)
        self.add("degraded_%s" % kind)
        return entry

    def record_engine_degradations(self, degraded):
        """Fold an AnalysisResult's DegradedRoot list into this stats
        object (kind "root"), for --stats / --stats-json surfacing."""
        for entry in degraded or ():
            self.record_degradation(
                "root", entry.describe(), root=entry.root,
                reason=entry.kind, reports_kept=entry.reports_kept,
            )

    # -- output -------------------------------------------------------------

    def as_dict(self):
        return {
            "schema_version": SCHEMA_VERSION,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "timers_s": {
                k: round(self.timers[k], 6) for k in sorted(self.timers)
            },
            "workers": {
                str(pid): self.workers[pid] for pid in sorted(self.workers)
            },
            "degradations": [dict(entry) for entry in self.degradations],
        }

    def dump_json(self, path, extra=None):
        """Write the stats (plus optional extra sections) to ``path``."""
        payload = self.as_dict()
        payload.update(extra or {})
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return payload

    def format_lines(self, prefix="driver."):
        """``--stats`` text form, one ``name = value`` line per entry."""
        lines = []
        for name in sorted(self.counters):
            lines.append("%s%s = %d" % (prefix, name, self.counters[name]))
        for name in sorted(self.timers):
            lines.append("%s%s_s = %.4f" % (prefix, name, self.timers[name]))
        for pid in sorted(self.workers):
            lines.append("%sworker.%s_tasks = %d" % (prefix, pid, self.workers[pid]))
        for index, entry in enumerate(self.degradations):
            lines.append(
                "%sdegraded.%d = %s: %s"
                % (prefix, index, entry["kind"], entry["detail"])
            )
        return lines

    def __repr__(self):
        return "<DriverStats %r>" % (self.as_dict(),)
