int contrived(int *p, int *w, int x) {
    int *q;

    if(x)
    {
        kfree(w);
        q = p;
        p = 0;
    }
    if(!x)
        return *w;  /* safe */
    return *q;      /* using 'q' after free! */
}
int contrived_caller(int *w, int x, int *p) {
    kfree(p);
    contrived(p, w, x);
    return *w;      /* using 'w' after free! */
}
