"""Table 1: hole types and their meanings -- one assertion per row.

====================  =======================================
Hole Type             Matches
====================  =======================================
Any C type            any expression of that type
any expr              any legal expression
any scalar            any scalar value (int, float, etc.)
any pointer           any pointer of any type
any arguments         any argument list
any fn call           any function call
====================  =======================================
"""

from repro.cfront import types as ctypes
from repro.cfront.parser import parse_expression
from repro.metal import (
    ANY_ARGUMENTS,
    ANY_EXPR,
    ANY_FN_CALL,
    ANY_POINTER,
    ANY_SCALAR,
)
from repro.metal.metatypes import ConcreteType
from repro.metal.patterns import compile_pattern, match


SCOPE = {
    "n": ctypes.INT,
    "f_val": ctypes.FLOAT,
    "p": ctypes.PointerType(ctypes.INT),
    "cp": ctypes.PointerType(ctypes.CHAR),
    "rec": ctypes.RecordType("struct", "s"),
}


def expr(text):
    return parse_expression(text, scope=SCOPE)


def check_row(hole_type, accepted, rejected):
    pattern = compile_pattern("sink(v)", {"v": hole_type})
    for text in accepted:
        assert match(pattern, expr("sink(%s)" % text)) is not None, (
            "%s should accept %s" % (hole_type, text)
        )
    for text in rejected:
        assert match(pattern, expr("sink(%s)" % text)) is None, (
            "%s should reject %s" % (hole_type, text)
        )


def run_table():
    rows = []
    # Row: any C type -- any expression of that type
    check_row(ConcreteType(ctypes.INT), ["n", "n + 1", "42"], ["f_val", "p"])
    rows.append(("int (concrete)", "n, n+1, 42", "f_val, p"))
    # Row: any expr -- any legal expression
    check_row(ANY_EXPR, ["n", "p", "rec", "n + f_val"], [])
    rows.append(("any expr", "everything", "-"))
    # Row: any scalar
    check_row(ANY_SCALAR, ["n", "f_val", "p"], ["rec"])
    rows.append(("any scalar", "n, f_val, p", "rec (a struct)"))
    # Row: any pointer
    check_row(ANY_POINTER, ["p", "cp"], ["n", "f_val", "rec"])
    rows.append(("any pointer", "p, cp", "n, f_val, rec"))
    # Row: any arguments -- swallows a whole argument list
    args_pattern = compile_pattern(
        "sink(args)", {"args": ANY_ARGUMENTS}
    )
    assert match(args_pattern, expr("sink(n, p, 3)"))["args"] is not None
    assert len(match(args_pattern, expr("sink(n, p, 3)"))["args"]) == 3
    assert match(args_pattern, expr("sink()"))["args"] == []
    rows.append(("any arguments", "(n, p, 3) and ()", "-"))
    # Row: any fn call
    call_pattern = compile_pattern(
        "fn(args)", {"fn": ANY_FN_CALL, "args": ANY_ARGUMENTS}
    )
    assert match(call_pattern, expr("anything(1, 2)")) is not None
    assert match(call_pattern, expr("n + 1")) is None
    rows.append(("any fn call", "anything(1,2)", "n + 1"))
    return rows


def test_table1_hole_types(benchmark):
    rows = benchmark(run_table)
    print("\nTable 1 reproduction:")
    print("  %-16s %-22s %s" % ("hole type", "matches", "rejects"))
    for name, accepted, rejected in rows:
        print("  %-16s %-22s %s" % (name, accepted, rejected))
    assert len(rows) == 6
