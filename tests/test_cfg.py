"""CFG construction, call graph, and supergraph tests."""

from repro.cfront import astnodes as ast
from repro.cfront.parser import parse
from repro.cfg import CallGraph, build_cfg, build_supergraph
from repro.cfg.blocks import ReturnMarker


def cfg_of(code, name=None):
    unit = parse(code)
    fns = unit.functions()
    decl = unit.function(name) if name else fns[0]
    return build_cfg(decl)


def edge_labels(block):
    return sorted(
        (repr(e.label), e.target.index) for e in block.edges
    )


class TestLinear:
    def test_straight_line(self):
        cfg = cfg_of("int f(int a) { a = a + 1; return a; }")
        entry = cfg.entry
        assert any(isinstance(i, ReturnMarker) for i in entry.items)
        assert entry.successor(None) is cfg.exit

    def test_declarations_in_blocks(self):
        cfg = cfg_of("int f(void) { int x = 1; return x; }")
        decls = [i for i in cfg.entry.items if isinstance(i, ast.VarDecl)]
        assert len(decls) == 1
        # initializer becomes an assignment item
        assigns = [i for i in cfg.entry.items if isinstance(i, ast.Assign)]
        assert len(assigns) == 1

    def test_local_names(self):
        cfg = cfg_of("int f(int a) { int b; { int c; } return a; }")
        assert cfg.local_names() == {"a", "b", "c"}


class TestBranches:
    def test_if_diamond(self):
        cfg = cfg_of("int f(int x) { if (x) x = 1; else x = 2; return x; }")
        branch = next(b for b in cfg.blocks if b.branch_cond is not None)
        labels = {e.label for e in branch.edges}
        assert labels == {True, False}

    def test_if_without_else_joins(self):
        cfg = cfg_of("int f(int x) { if (x) x = 1; return x; }")
        branch = next(b for b in cfg.blocks if b.branch_cond is not None)
        true_block = branch.successor(True)
        false_block = branch.successor(False)
        assert true_block is not false_block

    def test_negation_swaps_edges(self):
        cfg = cfg_of("int f(int x) { if (!x) return 1; return 2; }")
        branch = next(b for b in cfg.blocks if b.branch_cond is not None)
        # cond tree is the bare x; True edge leads to 'return 2'
        assert isinstance(branch.branch_cond, ast.Ident)

        def returns_reachable_from(start):
            seen, stack, out = set(), [start], []
            while stack:
                block = stack.pop()
                if block.index in seen:
                    continue
                seen.add(block.index)
                out.extend(
                    i.expr.value for i in block.items if isinstance(i, ReturnMarker)
                )
                stack.extend(e.target for e in block.edges)
            return out

        # True edge (x nonzero) reaches "return 2" only.
        assert returns_reachable_from(branch.successor(True)) == [2]
        assert returns_reachable_from(branch.successor(False)) == [1]

    def test_short_circuit_and(self):
        cfg = cfg_of("int f(int a, int b) { if (a && b) return 1; return 0; }")
        branches = [b for b in cfg.blocks if b.branch_cond is not None]
        assert len(branches) == 2  # one test per operand

    def test_short_circuit_or(self):
        cfg = cfg_of("int f(int a, int b) { if (a || b) return 1; return 0; }")
        branches = [b for b in cfg.blocks if b.branch_cond is not None]
        assert len(branches) == 2


class TestLoops:
    def test_while_back_edge(self):
        cfg = cfg_of("int f(int n) { while (n) n--; return n; }")
        header = next(b for b in cfg.blocks if b.branch_cond is not None)
        body = header.successor(True)
        assert any(e.target is header for e in body.edges)

    def test_loop_havoc_vars(self):
        cfg = cfg_of(
            "int f(int n) { int s = 0; while (n) { s += n; n--; } return s; }"
        )
        header = next(b for b in cfg.blocks if b.havoc_vars)
        assert header.havoc_vars == {"s", "n"}

    def test_for_havoc_includes_step(self):
        cfg = cfg_of("int f(int n) { int i; for (i = 0; i < n; i++) f(i); return i; }")
        header = next(b for b in cfg.blocks if b.havoc_vars)
        assert "i" in header.havoc_vars

    def test_break_exits_loop(self):
        cfg = cfg_of(
            "int f(int n) { while (1) { if (n) break; n++; } return n; }"
        )
        # some block jumps past the loop; the return must be reachable
        reachable = set()
        stack = [cfg.entry]
        while stack:
            b = stack.pop()
            if b.index in reachable:
                continue
            reachable.add(b.index)
            stack.extend(e.target for e in b.edges)
        assert cfg.exit.index in reachable

    def test_continue_targets_step(self):
        cfg = cfg_of(
            "int f(int n) { int i, s = 0;"
            " for (i = 0; i < n; i++) { if (i == 2) continue; s++; }"
            " return s; }"
        )
        assert cfg.exit.index in {b.index for b in cfg.blocks}

    def test_do_while(self):
        cfg = cfg_of("int f(int n) { do n--; while (n); return n; }")
        branch = next(b for b in cfg.blocks if b.branch_cond is not None)
        assert branch.successor(True) is not None


class TestSwitch:
    def test_case_edges(self):
        cfg = cfg_of(
            "int f(int x) { switch (x) { case 1: return 1; case 2: return 2;"
            " default: return 0; } }"
        )
        dispatch = next(b for b in cfg.blocks if b.switch_cond is not None)
        labels = [e.label for e in dispatch.edges]
        assert ("case", 1) in labels and ("case", 2) in labels
        assert "default" in labels

    def test_missing_default_falls_through(self):
        cfg = cfg_of("int f(int x) { switch (x) { case 1: x = 2; } return x; }")
        dispatch = next(b for b in cfg.blocks if b.switch_cond is not None)
        assert any(e.label == "default" for e in dispatch.edges)

    def test_fallthrough(self):
        cfg = cfg_of(
            "int f(int x) { int r = 0; switch (x) {"
            " case 1: r = 1; case 2: r += 2; break; } return r; }"
        )
        dispatch = next(b for b in cfg.blocks if b.switch_cond is not None)
        case1 = next(e.target for e in dispatch.edges if e.label == ("case", 1))
        case2 = next(e.target for e in dispatch.edges if e.label == ("case", 2))
        assert any(e.target is case2 for e in case1.edges)


class TestGoto:
    def test_forward_goto(self):
        cfg = cfg_of(
            "int f(int x) { if (x) goto out; x = 1; out: return x; }"
        )
        assert cfg.exit.index in {b.index for b in cfg.blocks}

    def test_backward_goto_loop(self):
        cfg = cfg_of(
            "int f(int x) { top: x--; if (x) goto top; return x; }"
        )
        # backward goto creates a cycle; still builds and prunes fine
        assert len(cfg.blocks) > 2


class TestCallBlocks:
    def test_call_isolated(self):
        cfg = cfg_of("int f(int *p) { int a = 1; g(p); a = 2; return a; }")
        call_blocks = [b for b in cfg.blocks if b.is_call_block]
        assert len(call_blocks) == 1
        assert len(call_blocks[0].items) == 1

    def test_return_value_call(self):
        cfg = cfg_of("int f(void) { int x = g(); return x; }")
        assert any(b.is_call_block for b in cfg.blocks)


class TestCallGraph:
    CODE = """
    int leaf(int x) { return x; }
    int mid(int x) { return leaf(x) + leaf(x + 1); }
    int root_a(int x) { return mid(x); }
    int root_b(int x) { return leaf(x); }
    """

    def test_roots(self):
        cg = CallGraph.from_units([parse(self.CODE)])
        assert cg.roots() == ["root_a", "root_b"]

    def test_callers_callees(self):
        cg = CallGraph.from_units([parse(self.CODE)])
        assert cg.callees["mid"] == {"leaf"}
        assert cg.callers["leaf"] == {"mid", "root_b"}

    def test_recursion_broken(self):
        code = "int a(int x) { return b(x); } int b(int x) { return a(x); }"
        cg = CallGraph.from_units([parse(code)])
        roots = cg.roots()
        assert len(roots) == 1  # one arbitrary root breaks the cycle

    def test_self_recursion(self):
        code = "int f(int x) { return f(x - 1); }"
        cg = CallGraph.from_units([parse(code)])
        assert cg.roots() == ["f"]

    def test_topological_order(self):
        cg = CallGraph.from_units([parse(self.CODE)])
        order = cg.topological_order()
        assert order.index("leaf") < order.index("mid")
        assert order.index("mid") < order.index("root_a")


class TestSupergraph:
    def test_callsites(self, fig2_code):
        cg = CallGraph.from_units([parse(fig2_code, "fig2.c")])
        sg = build_supergraph(cg)
        assert len(sg.callsites) == 1
        site = sg.callsites[0]
        assert site.caller == "contrived_caller"
        assert site.callee_name == "contrived"
        assert site.return_block is site.call_block.successor(None)

    def test_matched_calls_excluded(self, fig2_code):
        cg = CallGraph.from_units([parse(fig2_code, "fig2.c")])
        sg = build_supergraph(
            cg, matched_call_filter=lambda call: call.callee_name() == "contrived"
        )
        assert sg.callsites == []

    def test_entry_exit_nodes(self, fig2_code):
        cg = CallGraph.from_units([parse(fig2_code, "fig2.c")])
        sg = build_supergraph(cg)
        assert sg.entry("contrived").index == 0
        assert sg.exit("contrived").is_exit
