"""AST node classes for the C front end.

Design notes
------------

*Identity vs. structure.*  Nodes compare by identity (they are used as
dictionary keys for AST annotations, the mechanism extensions use to compose
-- see §3.2 of the paper).  Structural comparison, which metal pattern
matching needs for repeated holes ("each appearance must contain equivalent
ASTs"), is provided by :func:`structurally_equal` and :func:`structural_key`.

*Execution order.*  The paper applies extensions "to each AST in a single
path in execution order ... a function call's arguments are visited before
the call; an assignment's right-hand side is visited first, then the
left-hand side, then the assignment" (§5).  :func:`execution_order`
implements exactly that visit.
"""

from repro.cfront.source import UNKNOWN_LOCATION


class Node:
    """Base class of all AST nodes.

    Subclasses declare ``_fields``; child nodes (and lists of nodes) are
    discovered through it generically, which keeps traversal, unparsing and
    structural comparison in one place.
    """

    _fields = ()

    def __init__(self, location=None):
        self.location = location or UNKNOWN_LOCATION

    def children(self):
        """Yield direct child nodes (flattening list-valued fields)."""
        for name in self._fields:
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self):
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self):
        parts = []
        for name in self._fields:
            value = getattr(self, name)
            parts.append("%s=%r" % (name, value))
        return "%s(%s)" % (type(self).__name__, ", ".join(parts))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions.  ``ctype`` is filled by the parser's
    best-effort type inference (None when unknown)."""

    def __init__(self, location=None):
        super().__init__(location)
        self.ctype = None


class Ident(Expr):
    """An identifier use."""

    _fields = ("name",)

    def __init__(self, name, location=None):
        super().__init__(location)
        self.name = name


class IntLit(Expr):
    """Integer constant."""

    _fields = ("value",)

    def __init__(self, value, spelling=None, location=None):
        super().__init__(location)
        self.value = value
        self.spelling = spelling if spelling is not None else str(value)


class FloatLit(Expr):
    """Floating constant."""

    _fields = ("value",)

    def __init__(self, value, spelling=None, location=None):
        super().__init__(location)
        self.value = value
        self.spelling = spelling if spelling is not None else repr(value)


class CharLit(Expr):
    """Character constant; ``value`` is the integer code point."""

    _fields = ("value",)

    def __init__(self, value, spelling=None, location=None):
        super().__init__(location)
        self.value = value
        self.spelling = spelling if spelling is not None else "'%s'" % chr(value)


class StringLit(Expr):
    """String literal; ``value`` is the decoded text."""

    _fields = ("value",)

    def __init__(self, value, spelling=None, location=None):
        super().__init__(location)
        self.value = value
        self.spelling = spelling if spelling is not None else '"%s"' % value


class Unary(Expr):
    """A unary operation.

    ``op`` is one of ``+ - ~ ! * & ++ --``; ``postfix`` distinguishes
    ``p++`` from ``++p``.  ``*`` is pointer dereference, ``&`` address-of.
    """

    _fields = ("op", "operand")

    def __init__(self, op, operand, postfix=False, location=None):
        super().__init__(location)
        self.op = op
        self.operand = operand
        self.postfix = postfix


class Binary(Expr):
    """A binary operation (no assignments; see :class:`Assign`)."""

    _fields = ("op", "left", "right")

    def __init__(self, op, left, right, location=None):
        super().__init__(location)
        self.op = op
        self.left = left
        self.right = right


class Assign(Expr):
    """Assignment, simple (``=``) or compound (``+=`` ...)."""

    _fields = ("op", "target", "value")

    def __init__(self, op, target, value, location=None):
        super().__init__(location)
        self.op = op
        self.target = target
        self.value = value


class Conditional(Expr):
    """The ternary ``cond ? then : otherwise``."""

    _fields = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, location=None):
        super().__init__(location)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class Call(Expr):
    """A function call."""

    _fields = ("func", "args")

    def __init__(self, func, args, location=None):
        super().__init__(location)
        self.func = func
        self.args = list(args)

    def callee_name(self):
        """The called function's name for direct calls, else None."""
        if isinstance(self.func, Ident):
            return self.func.name
        return None


class Member(Expr):
    """``obj.name`` (``arrow=False``) or ``obj->name`` (``arrow=True``)."""

    _fields = ("obj", "name")

    def __init__(self, obj, name, arrow, location=None):
        super().__init__(location)
        self.obj = obj
        self.name = name
        self.arrow = arrow


class Index(Expr):
    """Array subscript ``array[index]``."""

    _fields = ("array", "index")

    def __init__(self, array, index, location=None):
        super().__init__(location)
        self.array = array
        self.index = index


class Cast(Expr):
    """``(type) operand``; ``to_type`` is a :class:`repro.cfront.types.CType`."""

    _fields = ("operand",)

    def __init__(self, to_type, operand, location=None):
        super().__init__(location)
        self.to_type = to_type
        self.operand = operand


class SizeofExpr(Expr):
    """``sizeof expr``."""

    _fields = ("operand",)

    def __init__(self, operand, location=None):
        super().__init__(location)
        self.operand = operand


class SizeofType(Expr):
    """``sizeof(type)``."""

    _fields = ()

    def __init__(self, of_type, location=None):
        super().__init__(location)
        self.of_type = of_type


class Comma(Expr):
    """The comma operator ``left, right``."""

    _fields = ("left", "right")

    def __init__(self, left, right, location=None):
        super().__init__(location)
        self.left = left
        self.right = right


class InitList(Expr):
    """A braced initializer list ``{a, b, c}``."""

    _fields = ("items",)

    def __init__(self, items, location=None):
        super().__init__(location)
        self.items = list(items)


class Hole(Expr):
    """A metal hole variable occurring inside a pattern AST.

    Never produced by the C parser proper; the metal pattern compiler
    rewrites identifiers that name hole variables into :class:`Hole` nodes.
    ``metatype`` is a :class:`repro.metal.metatypes.MetaType` or a concrete
    :class:`repro.cfront.types.CType`.
    """

    _fields = ("name",)

    def __init__(self, name, metatype, location=None):
        super().__init__(location)
        self.name = name
        self.metatype = metatype


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""


class ExprStmt(Stmt):
    """An expression statement ``expr;``."""

    _fields = ("expr",)

    def __init__(self, expr, location=None):
        super().__init__(location)
        self.expr = expr


class EmptyStmt(Stmt):
    """A lone ``;``."""

    _fields = ()


class Compound(Stmt):
    """A ``{ ... }`` block; items are declarations and statements."""

    _fields = ("items",)

    def __init__(self, items, location=None):
        super().__init__(location)
        self.items = list(items)


class If(Stmt):
    _fields = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise=None, location=None):
        super().__init__(location)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Stmt):
    _fields = ("cond", "body")

    def __init__(self, cond, body, location=None):
        super().__init__(location)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    _fields = ("body", "cond")

    def __init__(self, body, cond, location=None):
        super().__init__(location)
        self.body = body
        self.cond = cond


class For(Stmt):
    """``for (init; cond; step) body``; init may be a declaration."""

    _fields = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, location=None):
        super().__init__(location)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Switch(Stmt):
    _fields = ("cond", "body")

    def __init__(self, cond, body, location=None):
        super().__init__(location)
        self.cond = cond
        self.body = body


class Case(Stmt):
    _fields = ("expr", "stmt")

    def __init__(self, expr, stmt, location=None):
        super().__init__(location)
        self.expr = expr
        self.stmt = stmt


class Default(Stmt):
    _fields = ("stmt",)

    def __init__(self, stmt, location=None):
        super().__init__(location)
        self.stmt = stmt


class Break(Stmt):
    _fields = ()


class Continue(Stmt):
    _fields = ()


class Return(Stmt):
    _fields = ("expr",)

    def __init__(self, expr=None, location=None):
        super().__init__(location)
        self.expr = expr


class Goto(Stmt):
    _fields = ()

    def __init__(self, label, location=None):
        super().__init__(location)
        self.label = label


class Label(Stmt):
    _fields = ("stmt",)

    def __init__(self, name, stmt, location=None):
        super().__init__(location)
        self.name = name
        self.stmt = stmt


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Decl(Node):
    """Base class for declarations."""


class VarDecl(Decl):
    """A variable declaration (one declarator; the parser splits lists)."""

    _fields = ("init",)

    def __init__(self, name, ctype, init=None, storage=None, location=None):
        super().__init__(location)
        self.name = name
        self.ctype = ctype
        self.init = init
        self.storage = storage  # 'static' | 'extern' | 'typedef-expanded' | None

    def __repr__(self):
        return "VarDecl(%r, %r)" % (self.name, self.ctype)


class TypedefDecl(Decl):
    _fields = ()

    def __init__(self, name, ctype, location=None):
        super().__init__(location)
        self.name = name
        self.ctype = ctype

    def __repr__(self):
        return "TypedefDecl(%r, %r)" % (self.name, self.ctype)


class RecordDecl(Decl):
    """A standalone ``struct S { ... };`` / ``union U { ... };``."""

    _fields = ()

    def __init__(self, record_type, location=None):
        super().__init__(location)
        self.record_type = record_type

    def __repr__(self):
        return "RecordDecl(%r)" % (self.record_type,)


class EnumDecl(Decl):
    _fields = ()

    def __init__(self, enum_type, location=None):
        super().__init__(location)
        self.enum_type = enum_type

    def __repr__(self):
        return "EnumDecl(%r)" % (self.enum_type,)


class ParamDecl(Decl):
    _fields = ()

    def __init__(self, name, ctype, location=None):
        super().__init__(location)
        self.name = name
        self.ctype = ctype

    def __repr__(self):
        return "ParamDecl(%r, %r)" % (self.name, self.ctype)


class FunctionDecl(Decl):
    """A function declaration or definition (``body`` is None for protos)."""

    _fields = ("params", "body")

    def __init__(self, name, return_type, params, body=None, varargs=False,
                 storage=None, location=None):
        super().__init__(location)
        self.name = name
        self.return_type = return_type
        self.params = list(params)
        self.body = body
        self.varargs = varargs
        self.storage = storage

    @property
    def is_definition(self):
        return self.body is not None

    def __repr__(self):
        return "FunctionDecl(%r)" % self.name


class TranslationUnit(Node):
    """All top-level declarations of one source file."""

    _fields = ("decls",)

    def __init__(self, decls, filename="<string>", location=None):
        super().__init__(location)
        self.decls = list(decls)
        self.filename = filename

    def functions(self):
        """All function definitions in the unit."""
        return [d for d in self.decls if isinstance(d, FunctionDecl) and d.is_definition]

    def function(self, name):
        for decl in self.decls:
            if isinstance(decl, FunctionDecl) and decl.name == name and decl.is_definition:
                return decl
        return None


# ---------------------------------------------------------------------------
# Structural comparison and hashing
# ---------------------------------------------------------------------------

# Fields that take part in structural identity but are not Node-valued.
_ATOM_FIELDS = {
    Ident: ("name",),
    IntLit: ("value",),
    FloatLit: ("value",),
    CharLit: ("value",),
    StringLit: ("value",),
    Unary: ("op", "postfix"),
    Binary: ("op",),
    Assign: ("op",),
    Member: ("name", "arrow"),
    Hole: ("name",),
    Goto: ("label",),
    Label: ("name",),
    VarDecl: ("name",),
    ParamDecl: ("name",),
    FunctionDecl: ("name",),
}


def structural_key(node):
    """A hashable key such that two nodes are structurally equal iff their
    keys are equal.  Non-node leaves are included verbatim."""
    if node is None:
        return None
    if not isinstance(node, Node):
        return node
    atoms = tuple(getattr(node, f) for f in _ATOM_FIELDS.get(type(node), ()))
    parts = [type(node).__name__, atoms]
    if isinstance(node, Cast):
        parts.append(str(node.to_type))
    if isinstance(node, SizeofType):
        parts.append(str(node.of_type))
    for field in node._fields:
        value = getattr(node, field)
        if isinstance(value, (list, tuple)):
            parts.append(tuple(structural_key(v) for v in value))
        elif isinstance(value, Node):
            parts.append(structural_key(value))
        # atom fields already captured
    return tuple(parts)


def structurally_equal(a, b):
    """Structural AST equality, the notion repeated holes use: the pattern
    ``{foo(x,x)}`` matches ``foo(a[i],a[i])`` but not ``foo(0,1)`` (§4)."""
    return structural_key(a) == structural_key(b)


# ---------------------------------------------------------------------------
# Execution-order traversal (§5)
# ---------------------------------------------------------------------------


def execution_order(node):
    """Yield the program points of an expression tree in execution order.

    The rules from §5 of the paper:

    * a call's arguments are visited before the call itself;
    * an assignment's right-hand side first, then the left-hand side, then
      the assignment;
    * everything else: operands before the operator (postorder).

    Short-circuit operands and ``?:`` arms are *not* descended into here --
    the CFG builder lowers those into explicit control flow, so by the time
    the engine sees a tree it is branch-free.
    """
    if node is None:
        return
    if isinstance(node, Assign):
        yield from execution_order(node.value)
        yield from execution_order(node.target)
        yield node
    elif isinstance(node, Call):
        for arg in node.args:
            yield from execution_order(arg)
        yield from execution_order(node.func)
        yield node
    else:
        for child in node.children():
            yield from execution_order(child)
        yield node


def contains_identifier(node, name):
    """True if identifier ``name`` occurs anywhere inside ``node``."""
    if isinstance(node, Ident):
        # Leaf node: walk() would yield only the node itself, so skip the
        # generator machinery -- tracked objects are usually bare idents.
        return node.name == name
    return any(isinstance(n, Ident) and n.name == name for n in node.walk())


def identifiers_in(node):
    """The set of identifier names occurring in ``node``."""
    return {n.name for n in node.walk() if isinstance(n, Ident)}


def is_lvalue(node):
    """A conservative l-value test (assignable expressions)."""
    if isinstance(node, (Ident, Member, Index)):
        return True
    if isinstance(node, Unary) and node.op == "*" and not node.postfix:
        return True
    return False
