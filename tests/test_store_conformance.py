"""Backend conformance suite for the artifact store (docs/STORE.md).

One parametrized class runs the same assertions against all three
backends -- :class:`LocalStore`, :class:`RemoteStore` (against an
in-process :class:`StoreServer`), and :class:`TieredStore` (overlay +
remote) -- so the backend interface cannot quietly fork: frame
round-trips, batching, checksum/corrupt-frame self-heal through the
caches, manifest compare-and-swap, and GC pin semantics must behave
identically wherever the bytes live.  Hypothesis property tests drive
interleaved put/get/delete/gc sequences against a model dict.
"""

import json
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.driver import cache as astcache
from repro.driver import store as storemod
from repro.driver.project import Project
from repro.driver.store import (
    LocalStore,
    RemoteStore,
    StoreError,
    TieredStore,
    etag_of,
    parse_store_url,
)
from repro.driver.store_server import StoreServer

BACKENDS = ["local", "remote", "tiered"]


def _key(n):
    return "%064x" % n


def _manifest_doc(signature, fingerprints=None, frame_keys=(), ast_keys=()):
    return json.dumps(
        {
            "format": 1,
            "signature": signature,
            "fingerprints": dict(fingerprints or {}),
            "frame_keys": sorted(frame_keys),
            "ast_keys": sorted(ast_keys),
        },
        sort_keys=True,
    )


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    """One backend of each kind, torn down (server included) after."""
    servers, backends = [], []

    def build(ns="0"):
        if request.param == "local":
            built = LocalStore(root=str(tmp_path / ("local-%s" % ns)))
        else:
            root = tmp_path / ("server-%s" % ns)
            root.mkdir()
            server = StoreServer(str(root))
            url = server.start()
            servers.append(server)
            remote = RemoteStore(url)
            if request.param == "remote":
                built = remote
            else:
                built = TieredStore(
                    LocalStore(root=str(tmp_path / ("overlay-%s" % ns))),
                    remote,
                )
        backends.append(built)
        return built

    build.kind = request.param
    yield build
    for built in backends:
        built.close()
    for server in servers:
        server.stop()


class TestFrameConformance:
    def test_round_trip_and_head_and_delete(self, backend):
        store = backend()
        for tier in ("ast", "sum"):
            keys = [_key(i) for i in range(3)]
            payload = {key: ("frame:%s:%s" % (tier, key)).encode()
                       for key in keys}
            assert store.get_many(tier, keys) == {}
            assert store.head_many(tier, keys) == set()
            store.put_many(tier, payload)
            assert store.get_many(tier, keys) == payload
            assert store.head_many(tier, keys + [_key(9)]) == set(keys)
            assert store.delete_many(tier, [keys[0]]) == 1
            assert store.get_many(tier, keys) == {
                key: payload[key] for key in keys[1:]
            }
            assert store.delete_many(tier, [keys[0]]) == 0

    def test_tiers_are_disjoint_namespaces(self, backend):
        store = backend()
        key = _key(1)
        store.put_many("ast", {key: b"ast-bytes"})
        assert store.get_many("sum", [key]) == {}
        store.put_many("sum", {key: b"sum-bytes"})
        assert store.get_many("ast", [key]) == {key: b"ast-bytes"}
        assert store.get_many("sum", [key]) == {key: b"sum-bytes"}

    def test_batched_calls_move_many_frames_at_once(self, backend):
        store = backend()
        payload = {_key(i): b"x" * i for i in range(1, 40)}
        store.put_many("sum", payload)
        assert store.get_many("sum", list(payload)) == payload
        assert store.list_tier("sum").keys() == payload.keys()

    def test_overwrite_is_last_writer(self, backend):
        store = backend()
        key = _key(2)
        store.put_many("ast", {key: b"first"})
        store.put_many("ast", {key: b"second"})
        assert store.get_many("ast", [key]) == {key: b"second"}

    def test_empty_batches_are_noops(self, backend):
        store = backend()
        assert store.get_many("ast", []) == {}
        assert store.put_many("ast", {}) == 0
        assert store.head_many("ast", []) == set()
        assert store.delete_many("ast", []) == 0
        store.touch_many("ast", [])

    def test_touch_sets_and_entry_mtime_reads_back(self, backend):
        store = backend()
        key = _key(3)
        assert store.entry_mtime("sum", key) is None
        store.put_many("sum", {key: b"data"})
        assert store.entry_mtime("sum", key) is not None
        stamp = time.time() - 5 * 86400.0
        store.touch_many("sum", [key], ts=stamp)
        assert abs(store.entry_mtime("sum", key) - stamp) < 5.0
        store.touch_many("sum", [key])  # refresh to now
        assert time.time() - store.entry_mtime("sum", key) < 3600.0


class TestCacheSelfHealConformance:
    """The caches' checksum discipline must hold over any backend: a
    corrupt frame raises, is evicted, and the key reads as a miss."""

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "version"])
    def test_summary_frame_corruption(self, backend, mode):
        cache = astcache.SummaryCache(backend=backend())
        key = _key(4)
        cache.store(key, ["artifact-payload"])
        assert cache.get(key) == ["artifact-payload"]
        cache.corrupt(key, mode)
        with pytest.raises(astcache.CacheCorruption):
            cache.get(key)
        assert cache.evict(key)
        assert cache.get(key) is None

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "version"])
    def test_ast_frame_corruption(self, backend, mode):
        cache = astcache.AstCache(backend=backend())
        compiled = Project().compile_text("int x;\n", "t.c")
        payload = astcache.pack_unit(compiled.unit, compiled.source_bytes)
        key = _key(5)
        cache.store(key, payload)
        assert cache.load(key)[1] == compiled.source_bytes
        cache.corrupt(key, mode)
        with pytest.raises(astcache.CacheCorruption):
            cache.load(key)
        assert cache.evict(key)
        data, path = cache.fetch(key)
        assert data is None and path is None

    def test_prefetch_matches_direct_gets(self, backend):
        cache = astcache.SummaryCache(backend=backend())
        keys = [_key(i) for i in range(10, 14)]
        for i, key in enumerate(keys):
            cache.store(key, ["artifact", i])
        cache.prefetch(keys + [_key(99)])
        for i, key in enumerate(keys):
            assert cache.get(key) == ["artifact", i]
        assert cache.get(_key(99)) is None


class TestManifestConformance:
    def test_absent_manifest_reads_as_none(self, backend):
        store = backend()
        assert store.manifest_get("nothing") == (None, None)
        assert store.manifest_head("nothing") is None
        assert store.manifest_version("nothing") is None

    def test_cas_from_empty_then_stale_then_fresh(self, backend):
        store = backend()
        sig = "sig-cas"
        doc1 = _manifest_doc(sig, {"f": ["a", "b"]})
        ok, etag1, text = store.manifest_cas(sig, doc1, None)
        assert ok and text == doc1 and etag1 == etag_of(doc1)
        assert store.manifest_get(sig) == (doc1, etag1)

        # A second create-from-empty must lose and see the current doc.
        rival = _manifest_doc(sig, {"g": ["c", "d"]})
        ok, cur_etag, cur_text = store.manifest_cas(sig, rival, None)
        assert not ok and cur_etag == etag1 and cur_text == doc1

        # A CAS holding the current ETag commits.
        ok, etag2, __ = store.manifest_cas(sig, rival, etag1)
        assert ok and etag2 == etag_of(rival)
        assert store.manifest_get(sig) == (rival, etag2)

        # The stale ETag is now dead.
        ok, __, cur_text = store.manifest_cas(sig, doc1, etag1)
        assert not ok and cur_text == rival

    def test_version_token_changes_on_every_commit(self, backend):
        store = backend()
        sig = "sig-ver"
        before = store.manifest_version(sig)
        __, etag, __ = store.manifest_cas(sig, _manifest_doc(sig), None)
        first = store.manifest_version(sig)
        assert first is not None and first != before
        store.manifest_cas(sig, _manifest_doc(sig, {"f": ["x"]}), etag)
        assert store.manifest_version(sig) != first

    def test_list_and_delete(self, backend):
        store = backend()
        sig = "a" * 40
        store.manifest_cas(sig, _manifest_doc(sig), None)
        listed = store.manifest_list()
        assert sig[:32] in listed
        assert store.manifest_delete(sig[:32])
        assert store.manifest_get(sig) == (None, None)
        assert not store.manifest_delete(sig[:32])

    def test_concurrent_cas_loops_all_land(self, backend):
        """N contenders doing read-merge-CAS converge with every entry
        present -- the cross-machine replacement for the fcntl merge."""
        store = backend()
        sig = "sig-race"
        errors = []

        def contend(tag):
            try:
                for __ in range(64):
                    text, etag = store.manifest_get(sig)
                    merged = (
                        json.loads(text)["fingerprints"] if text else {}
                    )
                    merged[tag] = [tag, tag]
                    ok, __, __ = store.manifest_cas(
                        sig, _manifest_doc(sig, merged), etag
                    )
                    if ok:
                        return
                errors.append("%s: retries exhausted" % tag)
            except Exception as err:  # surfaced in the main thread
                errors.append("%s: %r" % (tag, err))

        tags = ["w%d" % i for i in range(8)]
        threads = [
            threading.Thread(target=contend, args=(tag,)) for tag in tags
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        text, __ = store.manifest_get(sig)
        assert set(json.loads(text)["fingerprints"]) == set(tags)


class TestGCConformance:
    def test_manifest_pins_and_extra_live_pins(self, backend):
        store = backend()
        now = time.time()
        old = now - 10 * 86400.0
        pinned, held, loose = _key(20), _key(21), _key(22)
        pinned_ast, loose_ast = _key(23), _key(24)
        store.put_many("sum", {
            key: b"frame" for key in (pinned, held, loose)
        })
        store.put_many("ast", {pinned_ast: b"a", loose_ast: b"b"})
        store.touch_many(
            "sum", [pinned, held, loose], ts=old
        )
        store.touch_many("ast", [pinned_ast, loose_ast], ts=old)
        # A fresh manifest pins one key per tier; extra_live pins one
        # more (the daemon's warm state); the rest age out.
        sig = "sig-gc"
        store.manifest_cas(
            sig,
            _manifest_doc(sig, frame_keys=[pinned], ast_keys=[pinned_ast]),
            None,
        )
        counters = store.gc(
            cutoff_days=1.0, now=now, extra_live_sum=[held]
        )
        assert counters["gc_summary_frames_dropped"] >= 1
        assert counters["gc_ast_frames_dropped"] >= 1
        assert store.head_many("sum", [pinned, held, loose]) == {
            pinned, held,
        }
        assert store.head_many("ast", [pinned_ast, loose_ast]) == {
            pinned_ast,
        }

    def test_stale_manifest_is_dropped_and_stops_pinning(self, backend):
        store = backend()
        now = time.time()
        key = _key(25)
        store.put_many("sum", {key: b"frame"})
        store.touch_many("sum", [key], ts=now - 10 * 86400.0)
        sig = "sig-stale"
        store.manifest_cas(
            sig, _manifest_doc(sig, frame_keys=[key]), None
        )
        # First sweep: the manifest is fresh, the frame survives.
        store.gc(cutoff_days=1.0, now=now)
        assert store.head_many("sum", [key]) == {key}
        # Age the manifest out; the next sweep drops both.
        counters = store.gc(cutoff_days=1.0, now=now + 20 * 86400.0)
        assert counters["gc_manifests_dropped"] >= 1
        assert store.manifest_get(sig) == (None, None)
        assert store.head_many("sum", [key]) == set()

    def test_young_frames_survive_unpinned(self, backend):
        store = backend()
        key = _key(26)
        store.put_many("ast", {key: b"fresh"})
        counters = store.gc(cutoff_days=30.0)
        assert counters["gc_frames_kept"] >= 1
        assert store.head_many("ast", [key]) == {key}


class TestUrlParsing:
    @pytest.mark.parametrize("url", [
        "tcp://127.0.0.1:7000", "http://127.0.0.1:7000", "127.0.0.1:7000",
    ])
    def test_accepted_shapes(self, url):
        assert parse_store_url(url) == ("127.0.0.1", 7000)

    @pytest.mark.parametrize("url", ["", "nope", "tcp://host:", "h:port"])
    def test_rejected_shapes(self, url):
        with pytest.raises(StoreError):
            parse_store_url(url)

    def test_open_store_shapes(self, tmp_path):
        assert storemod.open_store() is None
        local = storemod.open_store(cache_dir=str(tmp_path))
        assert isinstance(local, LocalStore)
        tiered = storemod.open_store(
            cache_dir=str(tmp_path), store_url="tcp://127.0.0.1:1"
        )
        assert isinstance(tiered, TieredStore)
        assert tiered.local is not None and tiered.remote is not None
        bare = storemod.open_store(store_url="tcp://127.0.0.1:1")
        assert isinstance(bare, TieredStore) and bare.local is None


# -- hypothesis property tests ------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 5), st.binary(max_size=48)),
        st.tuples(st.just("get"), st.lists(st.integers(0, 5), max_size=4)),
        st.tuples(st.just("delete"), st.lists(st.integers(0, 5), max_size=3)),
        st.tuples(st.just("gc_keep"), st.just(None)),
        st.tuples(
            st.just("gc_drop"), st.lists(st.integers(0, 5), max_size=3)
        ),
    ),
    max_size=12,
)


class TestInterleavedModel:
    """Interleaved put/get/delete/gc against a model dict: after any
    operation sequence the store and the model agree key for key."""

    _example_counter = [0]

    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=_ops)
    def test_store_matches_model(self, backend, ops):
        # Fresh namespace per example: state cannot leak across runs.
        self._example_counter[0] += 1
        ns = self._example_counter[0]

        def key_of(i):
            return _key(ns * 1000 + i)

        store = backend(ns="h%d" % ns)
        model = {}
        for op, *args in ops:
            if op == "put":
                index, data = args
                store.put_many("sum", {key_of(index): data})
                model[key_of(index)] = data
            elif op == "get":
                keys = [key_of(i) for i in args[0]]
                assert store.get_many("sum", keys) == {
                    key: model[key] for key in keys if key in model
                }
            elif op == "delete":
                keys = [key_of(i) for i in args[0]]
                store.delete_many("sum", keys)
                for key in keys:
                    model.pop(key, None)
            elif op == "gc_keep":
                # Cutoff far in the past: nothing is old enough to drop.
                store.gc(cutoff_days=30.0)
            elif op == "gc_drop":
                # Everything ages out except the pinned survivors.
                pins = {key_of(i) for i in args[0]}
                store.gc(
                    cutoff_days=1.0,
                    now=time.time() + 10 * 86400.0,
                    extra_live_sum=sorted(pins),
                )
                model = {
                    key: data for key, data in model.items()
                    if key in pins
                }
        keys = sorted(model) + [key_of(999)]
        assert store.get_many("sum", keys) == model
        assert store.head_many("sum", keys) == set(model)
