"""Deterministic, seeded fault injection for robustness testing.

Production static analysis survives hostile environments: worker
processes get OOM-killed mid-component, full disks truncate cache
entries, and pathological translation units blow every analysis budget.
The recovery machinery for all of that (docs/DRIVER.md, "Degradation
semantics") is only trustworthy if it can be exercised on demand, so this
package lets tests force those failures at instrumented points in the
engine and driver.

The package is split in two (with everything re-exported here):

- :mod:`repro.faults.plan` -- the plan model: spec validation,
  install/clear, cross-process counter state, env propagation;
- :mod:`repro.faults.inject` -- the injection points the engine and
  driver call (:func:`fires`, :func:`check`, :func:`at_worker_entry`).

A fault *plan* is a list of spec dicts::

    faults.install([
        {"site": "pass2.worker.kill", "key": 0, "times": 1},
        {"site": "cache.corrupt", "mode": "garbage", "times": 1},
        {"site": "summary.corrupt", "mode": "truncate", "times": 1},
        {"site": "engine.budget", "key": "hot_root"},
        {"site": "pass1.parse", "key": "/src/ioctl.c", "probability": 0.5},
    ])

Instrumented sites (``key`` narrows the fault to one work item):

==========================  =============================  ==================
site                        fires where                    key
==========================  =============================  ==================
``pass1.worker.kill``       pass-1 worker entry (exits)    source path
``pass1.worker.hang``       pass-1 worker entry (sleeps)   source path
``pass1.parse``             before the parse (raises)      source path
``pass2.worker.kill``       pass-2 worker entry (exits)    component index
``pass2.worker.hang``       pass-2 worker entry (sleeps)   component index
``pass2.analysis``          before the DFS (raises)        component index
``cache.corrupt``           after an AST-cache store       cache key
``summary.corrupt``         after a summary-frame store    summary key
``engine.budget``           every budget check (raises)    root function
``daemon.watcher``          every watcher poll (raises)    watch root
``daemon.request``          daemon request decode (raises) request op
``store.request``           store server: drop connection  request op
``store.slow``              store server: stall the reply  request op
``store.conflict``          client manifest-CAS window     session signature
==========================  =============================  ==================

(The ``summary.manifest`` site simulates a rival session's manifest
merge landing first; see :meth:`repro.driver.cache.SummaryCache.
store_manifest`.  ``store.request`` with ``mode="partial"`` sends the
response header plus half the frame bytes before dropping -- the
mid-batch-crash shape; ``store.conflict`` runs a genuine rival
read-merge-CAS inside the client's compare-and-swap window, forcing the
bounded-retry merge path; see docs/STORE.md.)

Determinism guarantees:

- ``times=N`` counters live in a shared on-disk state directory, so the
  count is global across the installing process and every worker: the
  first N matching attempts fire, wherever they happen.  A plan that
  kills the first pass-2 worker therefore kills it exactly once -- the
  retry survives -- no matter which process hosts the retry.
- ``probability=p`` is stateless: the verdict is a pure hash of
  ``(seed, site, key)``, so it is identical in every process and on
  every retry.  No ambient randomness is consulted anywhere.
- Plans propagate to worker processes through the ``XGCC_FAULTS``
  environment variable, surviving both fork and spawn start methods.

The ``*.kill`` and ``*.hang`` sites are applied through
:func:`at_worker_entry`, which is a no-op in the installing process --
an in-process fallback run can never kill or hang the driver itself.
"""

from repro.faults.inject import (
    InjectedFault,
    at_worker_entry,
    check,
    fires,
)
from repro.faults.plan import (
    ENV_VAR,
    FaultPlan,
    active,
    clear,
    in_worker,
    injected,
    install,
)

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "InjectedFault",
    "active",
    "at_worker_entry",
    "check",
    "clear",
    "fires",
    "in_worker",
    "injected",
    "install",
]
