"""Unit tests for the C tokenizer."""

import pytest

from repro.cfront.lexer import (
    Lexer,
    TokenKind,
    parse_char_constant,
    parse_int_constant,
    parse_string_literal,
    tokenize,
)
from repro.cfront.source import LexError


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_identifiers(self):
        assert values("foo _bar baz123") == ["foo", "_bar", "baz123"]
        assert kinds("foo") == [TokenKind.IDENT]

    def test_keywords(self):
        tokens = tokenize("int while return")[:-1]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens)

    def test_keyword_prefix_is_identifier(self):
        assert kinds("integer whilenot") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_eof_is_last(self):
        assert tokenize("x")[-1].kind is TokenKind.EOF
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_punctuation_maximal_munch(self):
        assert values("a>>=b") == ["a", ">>=", "b"]
        assert values("a>>b") == ["a", ">>", "b"]
        assert values("a->b") == ["a", "->", "b"]
        assert values("a--b") == ["a", "--", "b"]
        assert values("a- -b") == ["a", "-", "-", "b"]
        assert values("...") == ["..."]

    def test_ellipsis_vs_dots(self):
        assert values("a.b") == ["a", ".", "b"]


class TestNumbers:
    def test_decimal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT_CONST
        assert parse_int_constant(token.value) == 42

    def test_hex(self):
        assert parse_int_constant(tokenize("0xFF")[0].value) == 255
        assert parse_int_constant(tokenize("0x0")[0].value) == 0

    def test_octal(self):
        assert parse_int_constant(tokenize("0755")[0].value) == 0o755

    def test_suffixes(self):
        for text in ("42u", "42UL", "42ull", "42L"):
            token = tokenize(text)[0]
            assert token.kind is TokenKind.INT_CONST
            assert parse_int_constant(token.value) == 42

    def test_floats(self):
        for text in ("1.5", "1.", ".5", "1e3", "1.5e-3", "2.5f"):
            assert tokenize(text)[0].kind is TokenKind.FLOAT_CONST

    def test_int_then_member_not_float(self):
        assert kinds("a[1].x") == [
            TokenKind.IDENT,
            TokenKind.PUNCT,
            TokenKind.INT_CONST,
            TokenKind.PUNCT,
            TokenKind.PUNCT,
            TokenKind.IDENT,
        ]


class TestStringsAndChars:
    def test_string(self):
        token = tokenize('"hello"')[0]
        assert token.kind is TokenKind.STRING
        assert parse_string_literal(token.value) == "hello"

    def test_string_escapes(self):
        assert parse_string_literal('"a\\nb"') == "a\nb"
        assert parse_string_literal('"a\\tb"') == "a\tb"
        assert parse_string_literal('"\\x41"') == "A"
        assert parse_string_literal('"\\101"') == "A"
        assert parse_string_literal('"q\\"q"') == 'q"q'

    def test_char(self):
        assert parse_char_constant(tokenize("'a'")[0].value) == ord("a")
        assert parse_char_constant(tokenize("'\\n'")[0].value) == ord("\n")
        assert parse_char_constant(tokenize("'\\0'")[0].value) == 0

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')


class TestCommentsAndSpace:
    def test_line_comment(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x */ b") == ["a", "b"]
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_line_continuation(self):
        assert values("ab\\\ncd") == ["ab", "cd"]


class TestLocations:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_preceded_by_space(self):
        tokens = tokenize("a b(c)")
        assert not tokens[0].preceded_by_space
        assert tokens[1].preceded_by_space
        assert not tokens[2].preceded_by_space  # '(' hugs 'b'


class TestPreprocessorMode:
    def test_newlines_emitted(self):
        tokens = Lexer("a\nb", emit_newlines=True).tokens()
        assert [t.kind for t in tokens] == [
            TokenKind.IDENT,
            TokenKind.NEWLINE,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_hash_at_line_start(self):
        tokens = Lexer("#define X 1", emit_newlines=True).tokens()
        assert tokens[0].kind is TokenKind.HASH

    def test_hash_mid_line_is_punct(self):
        tokens = Lexer("a # b", emit_newlines=True).tokens()
        assert tokens[1].kind is TokenKind.PUNCT
