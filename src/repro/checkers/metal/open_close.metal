/* A file-descriptor discipline checker: every open must reach a close. */
sm open_close {
 state decl any_pointer f;
 decl any_arguments args;

 start: { f = open_file(args) } ==> f.open ;

 f.open:
    { close_file(f) } ==> f.stop
  | $end_of_path$ ==> f.stop,
    { err("%s opened but never closed", mc_identifier(f)); }
  ;
}
