"""False path pruning (§8): value tracking + congruence closure.

Implements the six steps from the paper:

1. track assignments and comparisons, renaming variables on assignment so
   different definitions are not confused;
2. evaluate expressions from known values, storing opaque expressions
   symbolically;
3. havoc variables defined in a loop at the loop head (avoids unrolling);
4. infer equalities through ``=``/``==``/``!=`` into congruence classes
   (Downey-Sethi-Tarjan style congruence closure [8]) and derive relations
   between classes from tracked inequalities;
5. at each branch, evaluate the condition against the known classes and
   relations and prune the impossible direction;
6. pruned paths are simply never traversed, so no summary entries are
   recorded for them (the retraction step is satisfied by construction;
   see DESIGN.md).

"Our algorithm is scalable because it does not track values or evaluate
branches too precisely" -- matching the paper, only scalar variables and
simple field/index expressions are tracked; everything else is opaque.
"""

from repro.cfront import astnodes as ast

_RELOPS = {"==", "!=", "<", ">", "<=", ">="}
_NEGATE = {"==": "!=", "!=": "==", "<": ">=", ">": "<=", "<=": ">", ">=": "<"}
_SWAP = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}


class _Closure:
    """Union-find with congruence over composite terms."""

    def __init__(self):
        self.parent = {}
        self.consts = {}  # rep -> int value
        self.diseq = {}  # rep -> set of reps
        self.sig = {}  # (op, rep...) -> composite term key
        self.args_of = {}  # composite key -> (op, [term keys])
        self.infeasible = False

    def copy(self):
        clone = _Closure()
        clone.parent = dict(self.parent)
        clone.consts = dict(self.consts)
        clone.diseq = {k: set(v) for k, v in self.diseq.items()}
        clone.sig = dict(self.sig)
        clone.args_of = dict(self.args_of)
        clone.infeasible = self.infeasible
        return clone

    def find(self, key):
        root = key
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        # Path compression.
        while self.parent.get(key, key) != root:
            self.parent[key], key = root, self.parent[key]
        return root

    def const_key(self, value):
        key = ("c", value)
        if key not in self.parent:
            self.parent[key] = key
            self.consts[key] = value
        return key

    def fresh(self, key):
        if key not in self.parent:
            self.parent[key] = key
        return key

    def composite(self, op, arg_keys):
        reps = tuple(self.find(a) for a in arg_keys)
        signature = (op,) + reps
        existing = self.sig.get(signature)
        if existing is not None:
            return existing
        key = ("t", op) + reps
        self.fresh(key)
        self.sig[signature] = key
        self.args_of[key] = (op, list(arg_keys))
        # Constant-fold when every argument class has a known constant.
        values = [self.consts.get(rep) for rep in reps]
        if all(v is not None for v in values):
            folded = _fold(op, values)
            if folded is not None:
                self.union(key, self.const_key(folded))
        return key

    def const_of(self, key):
        return self.consts.get(self.find(key))

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if rb in self.diseq.get(ra, ()):  # contradiction
            self.infeasible = True
            return
        ca, cb = self.consts.get(ra), self.consts.get(rb)
        if ca is not None and cb is not None and ca != cb:
            self.infeasible = True
            return
        self.parent[ra] = rb
        if ca is not None and cb is None:
            self.consts[rb] = ca
        # Merge disequality sets.
        if ra in self.diseq:
            self.diseq.setdefault(rb, set()).update(self.diseq.pop(ra))
        for other, enemies in self.diseq.items():
            if ra in enemies:
                enemies.discard(ra)
                enemies.add(rb)
        # Congruence: re-signature composites; any collision means two
        # composites became equal.  Stored signatures are always
        # canonical (this loop re-canonicalizes eagerly), so after
        # remapping ra -> rb the only signatures whose canonical form
        # changes are those mentioning ra, and the change is exactly the
        # substitution ra -> rb -- no find() calls needed.
        pending = []
        for signature, key in list(self.sig.items()):
            if ra not in signature:
                continue
            op = signature[0]
            reps = tuple(rb if r == ra else r for r in signature[1:])
            new_signature = (op,) + reps
            del self.sig[signature]
            existing = self.sig.get(new_signature)
            if existing is not None and self.find(existing) != self.find(key):
                pending.append((existing, key))
            else:
                self.sig[new_signature] = key
        for x, y in pending:
            self.union(x, y)

    def assert_diseq(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            self.infeasible = True
            return
        self.diseq.setdefault(ra, set()).add(rb)
        self.diseq.setdefault(rb, set()).add(ra)

    def are_equal(self, a, b):
        return self.find(a) == self.find(b)

    def are_diseq(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if rb in self.diseq.get(ra, ()):
            return True
        ca, cb = self.consts.get(ra), self.consts.get(rb)
        return ca is not None and cb is not None and ca != cb


def _fold(op, values):
    try:
        if op == "+":
            return sum(values)
        if op == "-":
            return values[0] - values[1]
        if op == "*":
            result = 1
            for v in values:
                result *= v
            return result
        if op == "/":
            return values[0] // values[1] if values[1] else None
        if op == "%":
            return values[0] % values[1] if values[1] else None
        if op == "neg":
            return -values[0]
        if op == "<<":
            return values[0] << values[1]
        if op == ">>":
            return values[0] >> values[1]
        if op == "&":
            return values[0] & values[1]
        if op == "|":
            return values[0] | values[1]
        if op == "^":
            return values[0] ^ values[1]
    except (TypeError, ValueError):
        return None
    return None


class PathConstraints:
    """Per-path value knowledge.  Copied at every path split."""

    def __init__(self):
        self.closure = _Closure()
        self.versions = {}  # variable name -> current version number
        # Ordering relations between class members, as raw (kind, a, b)
        # records; queried by graph search after canonicalization.
        self.relations = []

    def copy(self):
        clone = PathConstraints.__new__(PathConstraints)
        clone.closure = self.closure.copy()
        clone.versions = dict(self.versions)
        clone.relations = list(self.relations)
        return clone

    @property
    def infeasible(self):
        return self.closure.infeasible

    # -- term construction ------------------------------------------------------

    def _var_key(self, name):
        version = self.versions.setdefault(name, 0)
        return self.closure.fresh(("v", name, version))

    def term(self, expr):
        """The term key for an expression, or None when untrackable."""
        if isinstance(expr, ast.IntLit) or isinstance(expr, ast.CharLit):
            return self.closure.const_key(expr.value)
        if isinstance(expr, ast.Ident):
            return self._var_key(expr.name)
        if isinstance(expr, ast.Cast):
            return self.term(expr.operand)
        if isinstance(expr, ast.Unary) and expr.op == "-" and not expr.postfix:
            inner = self.term(expr.operand)
            if inner is None:
                return None
            return self.closure.composite("neg", [inner])
        if isinstance(expr, ast.Binary) and expr.op in (
            "+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
        ):
            left = self.term(expr.left)
            right = self.term(expr.right)
            if left is None or right is None:
                return None
            if expr.op in ("+", "*", "&", "|", "^"):
                # Canonical argument order for commutative operators.
                if repr(right) < repr(left):
                    left, right = right, left
            return self.closure.composite(expr.op, [left, right])
        if isinstance(expr, (ast.Member, ast.Index)):
            base = _base_variable(expr)
            if base is None:
                return None
            version = self.versions.setdefault(base, 0)
            return self.closure.fresh(("l", ast.structural_key(expr), version))
        return None

    # -- updates ------------------------------------------------------------------

    def assign(self, target, value_expr):
        """Track ``target = value_expr`` (step 1: rename on assignment)."""
        if isinstance(target, ast.Ident):
            value_key = self.term(value_expr) if value_expr is not None else None
            self.versions[target.name] = self.versions.get(target.name, 0) + 1
            if value_key is not None:
                self.closure.union(self._var_key(target.name), value_key)
        else:
            base = _base_variable(target)
            if base is not None:
                # Redefining a[i] / s->f invalidates tracked lvalues on the
                # base; cheapest correct move is a fresh version.
                self.versions[base] = self.versions.get(base, 0) + 1

    def havoc(self, names):
        """Forget everything about the named variables (step 3)."""
        for name in names:
            self.versions[name] = self.versions.get(name, 0) + 1

    def assume(self, cond, truth):
        """Record a branch outcome (steps 1 and 4)."""
        if cond is None:
            return
        if isinstance(cond, ast.Unary) and cond.op == "!" and not cond.postfix:
            self.assume(cond.operand, not truth)
            return
        if isinstance(cond, ast.Binary) and cond.op == "&&" and truth:
            self.assume(cond.left, True)
            self.assume(cond.right, True)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||" and not truth:
            self.assume(cond.left, False)
            self.assume(cond.right, False)
            return
        if isinstance(cond, ast.Binary) and cond.op in _RELOPS:
            op = cond.op if truth else _NEGATE[cond.op]
            left = self.term(cond.left)
            right = self.term(cond.right)
            if left is None or right is None:
                return
            self._assume_relation(op, left, right)
            return
        if isinstance(cond, ast.Assign):
            # "if ((p = f(...)))": the assignment was already tracked; the
            # truth applies to the assigned variable.
            self.assume(cond.target, truth)
            return
        key = self.term(cond)
        if key is None:
            return
        zero = self.closure.const_key(0)
        if truth:
            self.closure.assert_diseq(key, zero)
        else:
            self.closure.union(key, zero)

    def _assume_relation(self, op, left, right):
        if op == "==":
            self.closure.union(left, right)
        elif op == "!=":
            self.closure.assert_diseq(left, right)
        elif op == "<":
            self.relations.append(("<", left, right))
            self.closure.assert_diseq(left, right)
        elif op == ">":
            self.relations.append(("<", right, left))
            self.closure.assert_diseq(left, right)
        elif op == "<=":
            self.relations.append(("<=", left, right))
        elif op == ">=":
            self.relations.append(("<=", right, left))

    # -- queries ----------------------------------------------------------------------

    def evaluate(self, cond):
        """Three-valued evaluation of a branch condition (step 5)."""
        if cond is None:
            return None
        if isinstance(cond, ast.Unary) and cond.op == "!" and not cond.postfix:
            inner = self.evaluate(cond.operand)
            return None if inner is None else (not inner)
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            left = self.evaluate(cond.left)
            right = self.evaluate(cond.right)
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
            return None
        if isinstance(cond, ast.Binary) and cond.op == "||":
            left = self.evaluate(cond.left)
            right = self.evaluate(cond.right)
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if isinstance(cond, ast.Binary) and cond.op in _RELOPS:
            left = self.term(cond.left)
            right = self.term(cond.right)
            if left is None or right is None:
                return None
            return self._evaluate_relation(cond.op, left, right)
        if isinstance(cond, ast.Assign):
            return self.evaluate(cond.target)
        key = self.term(cond)
        if key is None:
            return None
        const = self.closure.const_of(key)
        if const is not None:
            return bool(const)
        zero = self.closure.const_key(0)
        if self.closure.are_diseq(key, zero):
            return True
        if self.closure.are_equal(key, zero):
            return False
        return None

    def _evaluate_relation(self, op, left, right):
        closure = self.closure
        if op == "==":
            if closure.are_equal(left, right):
                return True
            if closure.are_diseq(left, right):
                return False
            if self._strictly_less(left, right) or self._strictly_less(right, left):
                return False
            return None
        if op == "!=":
            result = self._evaluate_relation("==", left, right)
            return None if result is None else (not result)
        la, lb = closure.const_of(left), closure.const_of(right)
        if la is not None and lb is not None:
            return {"<": la < lb, ">": la > lb, "<=": la <= lb, ">=": la >= lb}[op]
        if op == "<":
            if self._strictly_less(left, right):
                return True
            if self._less_equal(right, left):
                return False
            return None
        if op == ">":
            return self._evaluate_relation("<", right, left)
        if op == "<=":
            if self._less_equal(left, right):
                return True
            if self._strictly_less(right, left):
                return False
            return None
        if op == ">=":
            return self._evaluate_relation("<=", right, left)
        return None

    def _relation_graph(self):
        """Edges rep -> [(rep, strict)] from the recorded relations, plus
        the implicit ordering between known-constant classes (5 < 10 needs
        no recorded relation)."""
        graph = {}
        find = self.closure.find
        for kind, a, b in self.relations:
            graph.setdefault(find(a), []).append((find(b), kind == "<"))
        # Implicit constant ordering: chain consecutive constant classes.
        by_value = {}
        for key, value in self.closure.consts.items():
            by_value[value] = find(key)
        ordered = sorted(by_value)
        for low, high in zip(ordered, ordered[1:]):
            graph.setdefault(by_value[low], []).append((by_value[high], True))
        return graph

    def _search(self, start, goal, need_strict):
        find = self.closure.find
        start, goal = find(start), find(goal)
        ca, cb = self.closure.consts.get(start), self.closure.consts.get(goal)
        if ca is not None and cb is not None:
            return ca < cb if need_strict else ca <= cb
        if start == goal:
            return not need_strict
        # Without recorded relations the graph holds only the implicit
        # constant chain, and at most one endpoint is constant here -- no
        # path can reach the non-constant endpoint.
        if not self.relations:
            return False
        graph = self._relation_graph()
        seen = set()
        stack = [(start, False)]
        while stack:
            node, strict = stack.pop()
            for succ, edge_strict in graph.get(node, ()):
                now_strict = strict or edge_strict
                if succ == goal and (now_strict or not need_strict):
                    return True
                # Bridge through constants: node <= c1 and c1 < c2 <= goal.
                if (succ, now_strict) not in seen:
                    seen.add((succ, now_strict))
                    stack.append((succ, now_strict))
        return False

    def _strictly_less(self, a, b):
        return self._search(a, b, need_strict=True)

    def _less_equal(self, a, b):
        return self._search(a, b, need_strict=False)


def _base_variable(expr):
    """The leftmost identifier a compound lvalue hangs off, if any."""
    node = expr
    while True:
        if isinstance(node, ast.Ident):
            return node.name
        if isinstance(node, ast.Member):
            node = node.obj
        elif isinstance(node, ast.Index):
            node = node.array
        elif isinstance(node, ast.Unary) and node.op == "*":
            node = node.operand
        elif isinstance(node, ast.Cast):
            node = node.operand
        else:
            return None
