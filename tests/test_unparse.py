"""Unparser tests, including parse -> unparse -> parse round trips."""

import pytest

from repro.cfront import astnodes as ast
from repro.cfront.parser import parse, parse_expression
from repro.cfront.unparse import unparse


def roundtrip_expr(text):
    first = parse_expression(text)
    rendered = unparse(first)
    second = parse_expression(rendered)
    assert ast.structurally_equal(first, second), (
        "round trip changed structure: %r -> %r" % (text, rendered)
    )
    return rendered


class TestExpressionUnparse:
    @pytest.mark.parametrize(
        "text",
        [
            "a + b * c",
            "(a + b) * c",
            "a = b = c + 1",
            "a ? b : c",
            "f(a, b)[3]->x.y",
            "*p++",
            "(*p)++",
            "-x",
            "- -x",
            "!~a",
            "sizeof(int *)",
            "sizeof x",
            "(char *)p + 1",
            "a << 2 | b >> 1",
            "a && b || c && d",
            "(a || b) && c",
            "a % (b / c)",
            "p->next->next",
            "a[i][j]",
            "f(g(h(x)))",
            "x == 0 ? f() : g()",
            "&a[0]",
            "*(p + 1)",
        ],
    )
    def test_roundtrip(self, text):
        roundtrip_expr(text)

    def test_precedence_parens_added(self):
        expr = parse_expression("(a + b) * c")
        assert unparse(expr) == "(a + b) * c"

    def test_no_spurious_parens(self):
        expr = parse_expression("a + b + c")
        assert unparse(expr) == "a + b + c"

    def test_string_spelling_preserved(self):
        expr = parse_expression('"a\\nb"')
        assert unparse(expr) == '"a\\nb"'


class TestDeclarationUnparse:
    def roundtrip_unit(self, text):
        first = parse(text)
        rendered = unparse(first)
        second = parse(rendered)
        assert ast.structural_key(first) == ast.structural_key(second)
        return rendered

    @pytest.mark.parametrize(
        "text",
        [
            "int x;",
            "int *p;",
            "int a[10];",
            "char *names[4];",
            "static int counter = 0;",
            "struct s { int a; struct s *next; };",
            "int f(int a, char *b) { return a; }",
            "void g(void) { }",
            "int max(int a, int b) { if (a > b) return a; return b; }",
        ],
    )
    def test_roundtrip(self, text):
        self.roundtrip_unit(text)

    def test_function_pointer_declarator(self):
        rendered = self.roundtrip_unit("int (*handler)(int, char *);")
        assert "(*handler)" in rendered

    def test_statement_forms(self):
        text = (
            "int f(int n) {\n"
            "    int s = 0;\n"
            "    for (int i = 0; i < n; i++) {\n"
            "        switch (i) {\n"
            "        case 0: s += 1; break;\n"
            "        default: s -= 1; break;\n"
            "        }\n"
            "        while (s > 10) s--;\n"
            "        do s++; while (s < 0);\n"
            "    }\n"
            "    goto out;\n"
            "out:\n"
            "    return s;\n"
            "}\n"
        )
        self.roundtrip_unit(text)


class TestHypothesisRoundtrip:
    """Property-based round trips over generated expressions."""

    def test_generated_expressions(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        names = st.sampled_from(["a", "b", "p", "q", "n"])
        ints = st.integers(min_value=0, max_value=1000)

        def leaves():
            return st.one_of(
                names.map(lambda n: n),
                ints.map(lambda v: str(v)),
            )

        binops = st.sampled_from(["+", "-", "*", "/", "==", "<", "&&", "||", "&"])
        unops = st.sampled_from(["-", "!", "~", "*", "&"])

        expr_text = st.recursive(
            leaves(),
            lambda inner: st.one_of(
                st.tuples(inner, binops, inner).map(
                    lambda t: "(%s %s %s)" % (t[0], t[1], t[2])
                ),
                st.tuples(unops, inner).map(lambda t: "%s(%s)" % (t[0], t[1])),
                st.tuples(names, inner).map(lambda t: "%s(%s)" % (t[0], t[1])),
                st.tuples(inner, inner).map(lambda t: "%s[%s]" % (t[0], t[1])),
            ),
            max_leaves=12,
        )

        @given(expr_text)
        @settings(max_examples=150, deadline=None)
        def check(text):
            roundtrip_expr(text)

        check()
