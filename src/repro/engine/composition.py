"""Extension composition via AST annotations (§3.2).

"Extensions can be composed such that each extension uses the results of
the previous one in its own analysis.  Extensions implement this
composition by using xgcc's internal interface to annotate the ASTs with
arbitrary data values.  Subsequent extensions can retrieve and use these
values."

Annotations are keyed by AST node identity, so they survive across the
sequential runs of composed extensions (the trees are shared).
"""


class AnnotationStore:
    """Arbitrary data values attached to AST nodes.

    When a :class:`repro.engine.deltas.DeltaTracker` is attached (set by
    the analysis when per-root artifacts are captured), every put/get is
    reported so incremental sessions can diff the store at root
    boundaries; ``nodes_with`` counts as a wildcard read.
    """

    def __init__(self):
        self._data = {}
        self.tracker = None

    def put(self, node, key, value):
        self._data.setdefault(id(node), {})[key] = value
        # Hold a reference so id() stays unique for the store's lifetime.
        self._data[id(node)].setdefault("$node", node)
        if self.tracker is not None:
            self.tracker.on_ann_put(node, key, value)

    def get(self, node, key, default=None):
        if self.tracker is not None:
            self.tracker.on_ann_get(node, key)
        slot = self._data.get(id(node))
        if slot is None:
            return default
        return slot.get(key, default)

    def nodes_with(self, key):
        """All (node, value) pairs annotated under ``key``."""
        if self.tracker is not None:
            self.tracker.on_ann_nodes_with(key)
        out = []
        for slot in self._data.values():
            if key in slot:
                out.append((slot["$node"], slot[key]))
        return out

    def __len__(self):
        return len(self._data)
