"""The compiled table-driven matcher (docs/MATCHER.md).

Four layers of evidence that ``--matcher=compiled`` is a pure speedup:

* hypothesis properties: random pattern/point pairs (base patterns and
  ``&&``/``||``/``!``/callout compositions, seeded and unseeded) agree
  with the interpreter on success *and* on every hole binding;
* dispatch-table unit tests: every seed checker's transitions land in
  exactly one source-state table, in declaration order, with zero
  interpreter fallbacks;
* engine counters: the ``matcher_*`` stats move in compiled mode and
  stay zero in interp mode;
* the differential harness: every seed checker over the torture files
  and the Section 7.1 global workload -- serial and ``jobs=4``, cold and
  warm/incremental -- produces byte-identical ranked reports,
  RootArtifacts, and annotation deltas in both modes.
"""

import os
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.blocks import ReturnMarker
from repro.cfront import astnodes as ast
from repro.cfront.parser import parse, parse_expression
from repro.checkers import ALL_CHECKERS, audit_checker, free_checker
from repro.checkers.pathkill import path_kill_extension
from repro.driver.project import Project
from repro.driver.session import IncrementalSession, session_signature
from repro.engine.analysis import Analysis, AnalysisOptions
from repro.metal import (
    ANY_EXPR,
    ANY_POINTER,
    ANY_SCALAR,
    Extension,
)
from repro.metal.compile import (
    CompiledExtension,
    compile_matcher,
    run_matcher,
)
from repro.metal.patterns import (
    Callout,
    MatchContext,
    NotPattern,
    compile_pattern,
    match,
)
from repro.ranking.severity import stratify

HOLES = {"v": ANY_POINTER, "x": ANY_EXPR, "n": ANY_SCALAR}
DATA = os.path.join(os.path.dirname(__file__), "data")
TORTURE = ["torture_kernelish", "torture_stmts", "torture_exprs",
           "torture_decls"]


# ---------------------------------------------------------------------------
# helpers


def _norm_value(value):
    """Bindings hold AST nodes (or argument lists); compare structurally."""
    if isinstance(value, list):
        return tuple(ast.structural_key(v) for v in value)
    if isinstance(value, ast.Node):
        return ast.structural_key(value)
    return value


def _norm(bindings):
    if bindings is None:
        return None
    return {name: _norm_value(value) for name, value in bindings.items()}


def interp_match(pattern, point, seed=None):
    bindings = dict(seed or {})
    ctx = MatchContext(point, bindings)
    if pattern.match(point, bindings, ctx):
        return bindings
    return None


def compiled_match(pattern, point, seed=None):
    matcher = compile_matcher(pattern, extra_names=tuple(seed or ()))
    return run_matcher(matcher, point, seed=seed)


def reports_of(code, extension, mode, filename="m.c"):
    unit = parse(code, filename)
    analysis = Analysis([unit], options=AnalysisOptions(matcher=mode))
    result = analysis.run(extension)
    return [r.format_trace() for r in stratify(result.reports)], result


# ---------------------------------------------------------------------------
# hypothesis properties: compiled == interpreter


IDENTS = ["p", "q", "buf", "count"]
FUNCS = ["kfree", "lock", "get"]
CONCRETE = {"v": "p", "x": "buf", "n": "count"}

_leaf = st.sampled_from(IDENTS + ["0", "1"])
_pattern_leaf = st.sampled_from(IDENTS + ["0", "1", "v", "x", "n"])


def _grow(leaves):
    def build(inner):
        return st.one_of(
            st.builds("{}({})".format, st.sampled_from(FUNCS), inner),
            st.builds("{}({}, {})".format, st.sampled_from(FUNCS), inner,
                      inner),
            st.builds("({} {} {})".format, inner,
                      st.sampled_from(["+", "-", "=="]), inner),
            st.builds("*{}".format, st.sampled_from(IDENTS)),
            st.builds("{} = {}".format, st.sampled_from(IDENTS), inner),
        )

    return st.recursive(leaves, build, max_leaves=5)


expr_texts = _grow(_leaf)
pattern_texts = _grow(_pattern_leaf)


def _instantiate(pattern_text):
    """Replace hole names with concrete identifiers: a point the pattern
    is guaranteed to have a fighting chance against."""
    return re.sub(
        r"\b([vxn])\b", lambda m: CONCRETE[m.group(1)], pattern_text
    )


def _point(text):
    return parse_expression(text)


class TestCompiledVsInterpreterProperties:
    @settings(max_examples=200, deadline=None)
    @given(pattern_texts, expr_texts)
    def test_random_pairs_agree(self, ptext, etext):
        pattern = compile_pattern(ptext, HOLES)
        point = _point(etext)
        assert _norm(compiled_match(pattern, point)) == _norm(
            interp_match(pattern, point)
        )

    @settings(max_examples=200, deadline=None)
    @given(pattern_texts)
    def test_instantiated_points_agree(self, ptext):
        """Force frequent successes: match each pattern against its own
        hole-substituted instantiation."""
        pattern = compile_pattern(ptext, HOLES)
        point = _point(_instantiate(ptext))
        got, want = (
            _norm(compiled_match(pattern, point)),
            _norm(interp_match(pattern, point)),
        )
        assert got == want

    @settings(max_examples=150, deadline=None)
    @given(pattern_texts, pattern_texts,
           st.sampled_from(["and", "or", "not", "callout"]))
    def test_compositions_agree(self, left_text, right_text, combinator):
        left = compile_pattern(left_text, HOLES)
        right = compile_pattern(right_text, HOLES)
        if combinator == "and":
            pattern = left & right
        elif combinator == "or":
            pattern = left | right
        elif combinator == "not":
            pattern = left & NotPattern(right)
        else:
            pattern = left & Callout(
                lambda ctx: isinstance(ctx.point, ast.Call), "is_call"
            )
        point = _point(_instantiate(left_text))
        assert _norm(compiled_match(pattern, point)) == _norm(
            interp_match(pattern, point)
        )

    @settings(max_examples=150, deadline=None)
    @given(pattern_texts, st.sampled_from(IDENTS))
    def test_seeded_matches_agree(self, ptext, seed_ident):
        """The engine seeds the state variable before matching; both
        engines must honour (and never rebind past) the seed."""
        pattern = compile_pattern(ptext, HOLES)
        point = _point(_instantiate(ptext))
        seed = {"v": parse_expression(seed_ident)}
        assert _norm(compiled_match(pattern, point, seed)) == _norm(
            interp_match(pattern, point, seed)
        )

    def test_return_marker_agreement(self):
        pattern = compile_pattern("return x;", HOLES)
        marker = ReturnMarker(parse_expression("count + 1"), None)
        assert _norm(compiled_match(pattern, marker)) == _norm(
            interp_match(pattern, marker)
        ) != None  # noqa: E711 -- both match, identically
        empty = ReturnMarker(None, None)
        assert compiled_match(pattern, empty) is None
        assert interp_match(pattern, empty) is None
        # A hole never swallows the marker itself.
        bare = compile_pattern("x", HOLES)
        assert compiled_match(bare, marker) is None
        assert interp_match(bare, marker) is None

    def test_repeated_hole_agreement(self):
        pattern = compile_pattern("get(x, x)", HOLES)
        hit = _point("get(buf, buf)")
        miss = _point("get(buf, count)")
        assert _norm(compiled_match(pattern, hit)) == _norm(
            interp_match(pattern, hit)
        ) != None  # noqa: E711
        assert compiled_match(pattern, miss) is None
        assert interp_match(pattern, miss) is None


# ---------------------------------------------------------------------------
# dispatch tables


class TestDispatchTables:
    @pytest.mark.parametrize("name", sorted(ALL_CHECKERS))
    def test_every_transition_in_exactly_one_table(self, name):
        ext = ALL_CHECKERS[name]()
        compiled = ext.compiled()
        assert isinstance(compiled, CompiledExtension)
        # Zero fallbacks: every seed-checker pattern compiles.
        assert compiled.n_fallback == 0
        crules = list(compiled.all_rules())
        assert len(crules) == len(ext.transitions) == compiled.n_rules
        seen = [id(cr.rule) for cr in crules]
        assert sorted(seen) == sorted(id(r) for r in ext.transitions)

    @pytest.mark.parametrize("name", sorted(ALL_CHECKERS))
    def test_tables_keyed_by_source_and_ordered(self, name):
        ext = ALL_CHECKERS[name]()
        compiled = ext.compiled()
        for (var, value), table in compiled.specific.items():
            for crule in table.rules:
                source = crule.rule.source
                assert not source.is_global
                assert (source.var, source.value) == (var, value)
        for value, table in compiled.globals_.items():
            for crule in table.rules:
                assert crule.rule.source.is_global
                assert crule.rule.source.value == value
        for table in list(compiled.specific.values()) + list(
            compiled.globals_.values()
        ):
            indices = [crule.index for crule in table.rules]
            # Declaration order survives table construction: first-match-
            # wins tie-breaking is identical to the interpreter's.
            assert indices == sorted(indices)

    def test_miss_memo_is_one_dict_probe(self):
        ext = free_checker()
        compiled = ext.compiled()
        # Assignments can never match the free checker's Call/Unary rules.
        assert not compiled.any_candidates(ast.Assign, False)
        assert (ast.Assign, False) in compiled._any_memo
        assert compiled.any_candidates(ast.Call, False)


# ---------------------------------------------------------------------------
# satellite caches


class TestSatelliteCaches:
    def test_has_holes_precompute(self):
        holed = compile_pattern("kfree(v)", HOLES)
        plain = compile_pattern("kfree(p)", {})
        assert holed.has_holes
        assert not plain.has_holes
        # Hole-free failure leaves caller bindings untouched.
        bindings = {"z": parse_expression("q")}
        ctx = MatchContext(_point("lock(p)"), bindings)
        assert not plain.match(_point("lock(p)"), bindings, ctx)
        assert set(bindings) == {"z"}
        assert match(plain, _point("kfree(p)")) == {}

    def test_transitions_from_cached_grouping(self):
        ext = free_checker()
        ref = ext.transitions[-1].source
        group = ext.transitions_from(ref)
        assert group
        assert all(
            (t.source.var, t.source.value) == (ref.var, ref.value)
            for t in group
        )
        assert list(group) == [
            t for t in ext.transitions
            if not t.source.is_global
            and (t.source.var, t.source.value) == (ref.var, ref.value)
        ]
        # Same mutation key -> same cached tuple object.
        assert ext.transitions_from(ref) is group

    def test_compiled_cache_invalidated_on_mutation(self):
        ext = free_checker()
        first = ext.compiled()
        assert ext.compiled() is first  # cached
        ref = ext.transitions[-1].source
        before = ext.transitions_from(ref)
        ext.transitions.append(ext.transitions[-1])
        rebuilt = ext.compiled()
        assert rebuilt is not first
        assert rebuilt.n_rules == first.n_rules + 1
        assert len(ext.transitions_from(ref)) == len(before) + 1


# ---------------------------------------------------------------------------
# engine counters


COUNTER_CODE = (
    "int f(int *p, int *q, int a, int b) {\n"
    "    kfree(p);\n"
    "    a = a + b;\n"
    "    b = a - 1;\n"
    "    kfree(q);\n"
    "    return *p;\n"
    "}\n"
)


class TestMatcherCounters:
    def test_compiled_counters_move(self):
        __, result = reports_of(COUNTER_CODE, free_checker(), "compiled")
        stats = result.stats
        assert stats["matcher_table_hits"] > 0
        assert stats["matcher_miss_memo_hits"] > 0
        assert stats["matcher_fallbacks"] == 0
        assert stats["matcher_compile_s"] > 0.0
        assert "matcher_compile_s:free_checker" in stats

    def test_interp_counters_stay_zero(self):
        __, result = reports_of(COUNTER_CODE, free_checker(), "interp")
        stats = result.stats
        assert stats["matcher_table_hits"] == 0
        assert stats["matcher_miss_memo_hits"] == 0
        assert stats["matcher_fallbacks"] == 0
        assert stats["matcher_compile_s"] == 0.0

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            AnalysisOptions(matcher="jit")


# ---------------------------------------------------------------------------
# differential harness: torture files, all seed checkers


class TestTortureDifferential:
    @pytest.mark.parametrize("fname", TORTURE)
    def test_all_checkers_byte_identical(self, fname):
        with open(os.path.join(DATA, fname + ".c")) as handle:
            text = handle.read()
        for name, make in sorted(ALL_CHECKERS.items()):
            outputs = {}
            for mode in ("interp", "compiled"):
                ranked, result = reports_of(
                    text, make(), mode, filename=fname + ".c"
                )
                outputs[mode] = ranked
                if mode == "compiled":
                    assert result.stats["matcher_fallbacks"] == 0, name
            assert outputs["interp"] == outputs["compiled"], (fname, name)


# ---------------------------------------------------------------------------
# differential harness: the Section 7.1 global workload


def global_suite():
    return [
        path_kill_extension(),
        free_checker(("kfree", "vfree")),
        audit_checker(),
    ]


GLOBAL_NAMES = ["pathkill", "free", "audit"]


def ranked_text(result):
    return "\n".join(r.format_trace() for r in stratify(result.reports))


def _norm_sets(mapping):
    return {key: sorted(repr(v) for v in values)
            for key, values in sorted(mapping.items(), key=repr)}


def artifact_state(artifact):
    delta = artifact.delta
    return (
        artifact.ext_index,
        getattr(artifact.extension, "name", artifact.extension),
        getattr(artifact.root, "name", str(artifact.root)),
        [r.format_trace() for r in artifact.reports],
        _norm_sets(artifact.examples),
        _norm_sets(artifact.counterexamples),
        artifact.degraded,
        artifact.clean,
        repr(delta.__getstate__()) if delta is not None else None,
    )


def _write_tree(tmp_path, gen):
    for name, text in gen.files.items():
        (tmp_path / name).write_text(text)
    return sorted(
        str(tmp_path / name) for name in gen.files if name.endswith(".c")
    )


def _project(tmp_path, paths, cache_dir=None, jobs=1):
    project = Project(
        include_paths=[str(tmp_path)],
        cache_dir=str(cache_dir) if cache_dir else None,
    )
    project.compile_files(paths, jobs=jobs)
    return project


class TestGlobalWorkloadDifferential:
    def _run(self, tmp_path, paths, mode, jobs=1, artifacts=False):
        options = AnalysisOptions(
            matcher=mode, capture_root_artifacts=artifacts
        )
        project = _project(tmp_path, paths)
        result = project.run(
            global_suite(), options=options, jobs=jobs,
            extension_factory=global_suite,
        )
        return project, result

    def test_cold_serial_byte_identical_with_artifacts(self, tmp_path):
        from repro.codegen.project_gen import generate_global_project

        gen = generate_global_project(seed=3)
        paths = _write_tree(tmp_path, gen)
        __, interp = self._run(tmp_path, paths, "interp", artifacts=True)
        __, compiled = self._run(tmp_path, paths, "compiled", artifacts=True)
        assert interp.reports  # the workload actually finds things
        assert ranked_text(interp) == ranked_text(compiled)
        left = sorted(map(artifact_state, interp.root_artifacts))
        right = sorted(map(artifact_state, compiled.root_artifacts))
        assert left == right

    def test_parallel_modes_byte_identical(self, tmp_path):
        """Like-for-like under ``--jobs=4``: switching the matcher never
        changes what a parallel run reports."""
        from repro.codegen.project_gen import generate_global_project

        gen = generate_global_project(seed=3)
        paths = _write_tree(tmp_path, gen)
        __, interp = self._run(tmp_path, paths, "interp", jobs=4)
        __, compiled = self._run(tmp_path, paths, "compiled", jobs=4)
        assert interp.reports
        assert ranked_text(interp) == ranked_text(compiled)

    def test_warm_replay_across_modes(self, tmp_path):
        """``matcher`` is a non-semantic option: an interp-mode cold run
        and a compiled-mode warm run share one incremental signature, and
        the warm run is a pure replay."""
        from repro.codegen.project_gen import generate_global_project

        gen = generate_global_project(seed=3)
        cache = tmp_path / "cache"
        paths = _write_tree(tmp_path, gen)

        def session(mode):
            return IncrementalSession(
                str(cache),
                session_signature(
                    checker_names=GLOBAL_NAMES,
                    options=AnalysisOptions(matcher=mode),
                ),
            )

        cold_project = _project(tmp_path, paths, cache)
        cold = cold_project.run(
            global_suite(), options=AnalysisOptions(matcher="interp"),
            incremental=session("interp"),
        )
        warm_project = _project(tmp_path, paths, cache)
        warm = warm_project.run(
            global_suite(), options=AnalysisOptions(matcher="compiled"),
            incremental=session("compiled"),
        )
        assert ranked_text(cold) == ranked_text(warm)
        counters = warm_project.stats.counters
        assert counters.get("incremental_fallbacks", 0) == 0
        assert counters["incremental_roots_analyzed"] == 0
        assert counters["incremental_roots_replayed"] > 0
