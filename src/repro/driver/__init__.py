"""The xgcc driver: two-pass build (§6) and command line interface."""

from repro.driver.project import Project, CompiledUnit

__all__ = ["Project", "CompiledUnit"]
