"""Structured reports: the product of an analysis run.

The paper's workflow ends at ranked text; this package makes the
*structured report* the product and text one renderer over it
(CodeChecker's layering, PAPERS.md).  Four pieces:

- :mod:`repro.reports.model` -- the :class:`Report` model (checker,
  message, severity, structured locations, error-path steps) plus the
  text renderer that reproduces the classic ranked output byte for
  byte, and dict/JSON round-tripping.
- :mod:`repro.reports.hashing` -- the **stable report hash**: checker +
  structurally-keyed location (function, variable, message, path-shape
  digest -- never line numbers), so a report keeps its identity across
  line drift and unrelated edits.
- :mod:`repro.reports.history` -- the run-history layer: every run
  persisted through the artifact-store backend keyed by run id, with
  ``diff --new/--resolved/--unresolved`` computed by hash
  set-difference.
- :mod:`repro.reports.triage` -- persistent triage: suppressions with
  provenance, severity overrides, and false-positive marks keyed by
  report hash (or rule, or the §8 history key), shared through any
  store backend.
"""

from repro.reports.hashing import (
    assign_report_hashes,
    report_base_key,
    report_hash,
)
from repro.reports.history import RunHistory, diff_hash_sets
from repro.reports.model import SEVERITY_ORDER, Report
from repro.reports.triage import TriageEntry, TriageStore

__all__ = [
    "Report",
    "SEVERITY_ORDER",
    "report_base_key",
    "report_hash",
    "assign_report_hashes",
    "RunHistory",
    "diff_hash_sets",
    "TriageEntry",
    "TriageStore",
]
