"""Statistical null-argument checker tests."""

from repro.cfront.parser import parse
from repro.cfg import CallGraph
from repro.checkers.nullarg import (
    collect_argument_uses,
    infer_nonnull_rules,
    report_null_argument_sites,
)

CODE = (
    "struct s { int x; };\n"
    "int a(struct s *p) { consume(p, 1); return 0; }\n"
    "int b(struct s *p) { consume(p, 2); return 0; }\n"
    "int c(struct s *p) { consume(p, 0); return 0; }\n"  # 0 as arg1: fine
    "int d(struct s *p) { consume(p, 3); return 0; }\n"
    "int deviant(void) { consume(0, 4); return 0; }\n"  # NULL as arg0!
)


def callgraph(code=CODE):
    return CallGraph.from_units([parse(code, "n.c")])


class TestCollection:
    def test_argument_classification(self):
        uses = collect_argument_uses(callgraph())
        arg0 = [(null, ptr) for callee, i, null, ptr, loc, fn in uses
                if callee == "consume" and i == 0]
        assert sum(1 for null, __ in arg0 if null) == 1
        assert sum(1 for __, ptr in arg0 if ptr) == 4

    def test_cast_null_counts(self):
        code = "int f(void) { sink((char *)0); sink(p); sink(q); sink(r); return 0; }"
        uses = collect_argument_uses(callgraph(code))
        assert sum(1 for __, __, null, __, __, __ in uses if null) == 1


class TestInference:
    def test_rule_found(self):
        rules = infer_nonnull_rules(callgraph())
        by_key = {(r.callee, r.index): r for r in rules}
        rule = by_key[("consume", 0)]
        assert rule.non_null == 4
        assert rule.violations == 1
        assert rule.z_score > 1.0

    def test_integer_position_not_confused(self):
        # arg 1 is an int position: the literal 0 there is the integer
        # zero, not NULL, so no rule is inferred for it at all.
        rules = infer_nonnull_rules(callgraph())
        keys = {(r.callee, r.index) for r in rules}
        assert ("consume", 0) in keys
        assert ("consume", 1) not in keys

    def test_min_threshold(self):
        code = "int f(void) { rare(0); return 0; }"
        assert infer_nonnull_rules(callgraph(code)) == []


class TestReporting:
    def test_deviant_site_reported(self):
        reports = report_null_argument_sites(callgraph(), min_z=1.2)
        assert len(reports) == 1
        assert reports[0].function == "deviant"
        assert "argument 0 of consume()" in reports[0].message

    def test_z_threshold_filters(self):
        assert report_null_argument_sites(callgraph(), min_z=10.0) == []
