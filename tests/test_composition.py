"""Composition tests (§3.2): AST annotations, path-kill, error-path
severity annotation."""

from conftest import messages

from repro.cfront.parser import parse
from repro.checkers import free_checker, path_kill_extension
from repro.checkers.pathkill import error_path_annotator
from repro.engine.analysis import Analysis
from repro.engine.composition import AnnotationStore


class TestAnnotationStore:
    def test_put_get(self):
        store = AnnotationStore()
        node = parse("int x;").decls[0]
        store.put(node, "k", 42)
        assert store.get(node, "k") == 42
        assert store.get(node, "other") is None

    def test_default(self):
        store = AnnotationStore()
        node = parse("int x;").decls[0]
        assert store.get(node, "k", "dflt") == "dflt"

    def test_nodes_with(self):
        store = AnnotationStore()
        unit = parse("int x; int y;")
        store.put(unit.decls[0], "k", 1)
        store.put(unit.decls[1], "k", 2)
        assert sorted(v for __, v in store.nodes_with("k")) == [1, 2]


class TestPathKillComposition:
    CODE = (
        "int f(int *p, int c) {\n"
        "    kfree(p);\n"
        "    if (c) {\n"
        "        panic();\n"
        "        return *p;\n"  # dominated by panic: must be suppressed
        "    }\n"
        "    return *p;\n"  # real error
        "}\n"
    )

    def test_without_pathkill_two_reports(self):
        unit = parse(self.CODE, "pk.c")
        result = Analysis([unit]).run(free_checker())
        assert len(result.reports) >= 1
        lines = {r.location.line for r in result.reports}
        assert 5 in lines  # the panic-dominated report fires

    def test_with_pathkill_composed(self):
        # Run path_kill first, then the free checker in the SAME analysis:
        # the annotation suppresses the panic path.
        unit = parse(self.CODE, "pk.c")
        analysis = Analysis([unit])
        result = analysis.run([path_kill_extension(), free_checker()])
        lines = {r.location.line for r in result.reports}
        assert lines == {7}

    def test_annotation_present_after_pathkill_run(self):
        unit = parse(self.CODE, "pk.c")
        analysis = Analysis([unit])
        analysis.run(path_kill_extension())
        flagged = analysis.annotations.nodes_with("pathkill")
        assert len(flagged) == 1

    def test_pathkill_respects_custom_terminators(self):
        code = self.CODE.replace("panic()", "my_die()")
        unit = parse(code, "pk.c")
        analysis = Analysis([unit])
        result = analysis.run([path_kill_extension(("my_die",)), free_checker()])
        assert {r.location.line for r in result.reports} == {7}


class TestErrorPathAnnotator:
    def test_marks_error_returns(self):
        code = (
            "int f(int c) {\n"
            "    if (c)\n"
            "        return -1;\n"
            "    return 0;\n"
            "}\n"
        )
        unit = parse(code, "ep.c")
        analysis = Analysis([unit])
        analysis.run(error_path_annotator())
        assert len(analysis.annotations.nodes_with("onpath")) == 1
