"""The two-pass analysis driver (§6).

"1. The first preprocessing pass compiles each file in isolation, emitting
ASTs to a temporary file.  These emitted files include all type
declarations, variable declarations, and code within the source file and
are typically four or five times larger than the text representation.

2. The second analysis pass reads these temporary files, reassembles
their ASTs, and constructs the CFG and call graph."

Pass 1 output is a pickle of the translation unit per file (our "emitted
AST" format); the size ratio claim is measured by
``benchmarks/bench_ast_emission.py``.

Both passes scale out (docs/DRIVER.md):

- :meth:`Project.compile_files` fans pass 1 over worker processes
  (``jobs=N``) and, when ``cache_dir`` is set, serves unchanged files
  from a persistent content-addressed AST cache
  (:mod:`repro.driver.cache`) instead of re-parsing them.
- :meth:`Project.run` with ``jobs=N`` partitions the call graph into
  connected components and analyzes them in worker processes, merging
  the logs back into the exact serial report order
  (:mod:`repro.driver.parallel`).
"""

import os

from repro.cfront.parser import Parser
from repro.cfront.preproc import Preprocessor
from repro.cfg.callgraph import CallGraph
from repro.driver import cache as astcache
from repro.driver import store as storemod
from repro.driver.stats import DriverStats
from repro.engine.analysis import Analysis, AnalysisOptions
from repro.cfront import astnodes as ast


class CompiledUnit:
    """Pass-1 output for one source file."""

    def __init__(self, filename, unit, source_bytes, emitted_bytes,
                 from_cache=False):
        self.filename = filename
        self.unit = unit
        self.source_bytes = source_bytes
        self.emitted_bytes = emitted_bytes
        self.from_cache = from_cache

    @property
    def expansion_ratio(self):
        if not self.source_bytes:
            return 0.0
        return self.emitted_bytes / self.source_bytes


class Project:
    """A source base under analysis."""

    def __init__(self, include_paths=(), defines=None, emit_dir=None,
                 file_reader=None, cache_dir=None, stats=None,
                 keep_going=False, store_url=None, store_backend=None):
        self.include_paths = list(include_paths)
        self.defines = dict(defines or {})
        self.emit_dir = emit_dir
        #: Persistent content-addressed AST cache directory (incremental
        #: pass 1); None disables caching.
        self.cache_dir = cache_dir
        #: Remote artifact-store URL (``--store-url`` / ``XGCC_STORE``);
        #: combined with ``cache_dir`` it forms a tiered store whose
        #: local overlay keeps warm reads off the network.
        self.store_url = store_url
        self._store_backend = store_backend
        #: CodeChecker-style per-TU recovery: when set, a file whose
        #: pass 1 fails outright (after worker retries) is skipped and
        #: recorded as a "unit" degradation instead of aborting the run.
        self.keep_going = keep_going
        #: Optional override for reading #include targets (e.g. in-memory
        #: trees from the project generator); defaults to the filesystem.
        self.file_reader = file_reader
        #: Driver observability (timers / cache counters / worker tallies).
        self.stats = stats or DriverStats()
        self.units = []
        self.compiled = []
        self.static_vars = {}
        self._callgraph = None
        #: Tier-1 cache keys this project probed (hits and stores) --
        #: recorded into the incremental manifest so cache GC knows which
        #: .ast frames a fresh manifest still depends on.
        self.ast_keys_used = []

    @property
    def store_backend(self):
        """The artifact-store backend behind this project's caches
        (built lazily: local, remote, or tiered per ``cache_dir`` /
        ``store_url``); None when caching is disabled entirely."""
        if self._store_backend is None:
            self._store_backend = storemod.open_store(
                cache_dir=self.cache_dir, store_url=self.store_url,
                stats=self.stats,
            )
        return self._store_backend

    # -- pass 1 -----------------------------------------------------------------

    def compile_text(self, text, filename="<string>"):
        """Pass 1 for in-memory source text."""
        with self.stats.phase("preprocess"):
            pp = Preprocessor(self.include_paths, self.defines, self.file_reader)
            tokens = pp.preprocess_text(text, filename)
        with self.stats.phase("parse"):
            parser = Parser(None, filename, tokens=tokens)
            unit = parser.parse_translation_unit()
            unit.filename = filename
        self.stats.add("parses")
        source_bytes = len(text.encode())
        with self.stats.phase("emit"):
            emitted = astcache.pack_unit(unit, source_bytes)
            if self.emit_dir is not None:
                os.makedirs(self.emit_dir, exist_ok=True)
                out = os.path.join(
                    self.emit_dir, os.path.basename(filename) + ".ast"
                )
                with open(out, "wb") as handle:
                    handle.write(emitted)
        compiled = CompiledUnit(filename, unit, source_bytes, len(emitted))
        self.compiled.append(compiled)
        self._register(unit, filename)
        return compiled

    def compile_file(self, path):
        """Pass 1 for one on-disk file (cache-aware when cache_dir is set)."""
        return self.compile_files([path])[0]

    def compile_files(self, paths, jobs=1, worker_timeout=None):
        """Pass 1 over a batch of files, in deterministic input order.

        ``jobs > 1`` fans preprocess/parse/emit out over a process pool;
        results are registered in ``paths`` order regardless of worker
        completion order, so serial and parallel runs build identical
        projects.  With ``cache_dir`` set, unchanged files are cache hits
        (``load_emitted`` work) rather than re-parses; corrupt entries
        are evicted and re-parsed.  A worker that dies (or outlives
        ``worker_timeout`` seconds) is retried once, then its file is
        compiled in-process.
        """
        from repro.driver.parallel import compile_files_into
        return compile_files_into(
            self, paths, jobs=jobs, worker_timeout=worker_timeout
        )

    def adopt_unit(self, compiled):
        """Register an already-compiled unit (warm daemon reuse).

        The analysis daemon keeps :class:`CompiledUnit` objects for
        unchanged files pinned in memory across edit bursts; adopting
        one costs two list appends — no preprocess, no parse, no cache
        probe.  Registration order is the caller's responsibility (the
        daemon walks files in sorted order, matching a cold run).
        """
        self.compiled.append(compiled)
        self._register(compiled.unit, compiled.filename)
        self.stats.add("units_adopted")
        return compiled

    def load_emitted(self, path):
        """Pass 2 entry: reassemble a pass-1 AST file.

        Appends a :class:`CompiledUnit` (emitted size from disk, original
        source size from the payload) so ``expansion_ratio`` and
        ``total_source_bytes`` reporting stay correct for cache-hit loads.
        """
        with open(path, "rb") as handle:
            data = handle.read()
        unit, source_bytes = astcache.unpack(data)
        compiled = CompiledUnit(
            unit.filename, unit, source_bytes, len(data), from_cache=True
        )
        self.compiled.append(compiled)
        self._register(unit, unit.filename)
        return compiled

    def _register(self, unit, filename):
        self.units.append(unit)
        self._callgraph = None
        for decl in unit.decls:
            if isinstance(decl, ast.VarDecl) and decl.storage == "static":
                self.static_vars[decl.name] = filename

    # -- pass 2 ------------------------------------------------------------------

    @property
    def callgraph(self):
        if self._callgraph is None:
            with self.stats.phase("callgraph"):
                self._callgraph = CallGraph.from_units(self.units)
        return self._callgraph

    def analysis(self, options=None):
        """Build the analysis engine over the reassembled source base."""
        return Analysis(
            callgraph=self.callgraph,
            options=options or AnalysisOptions(),
            static_vars=self.static_vars,
            phase_timer=self.stats.phase,
        )

    def run(self, extensions, options=None, jobs=1, extension_factory=None,
            worker_timeout=None, roots=None, incremental=None):
        """Apply extensions to the whole project.

        ``jobs > 1`` schedules independent call-graph components onto
        worker processes (same reports, same order as serial).  Workers
        rebuild the extension list from ``extension_factory`` -- a
        picklable zero-argument callable -- or by pickling ``extensions``
        directly; when neither works the run falls back to serial.  A
        worker that dies (or outlives ``worker_timeout`` seconds) is
        retried once, then its component is analyzed in-process.

        ``roots`` restricts pass 2 to a subset of the call-graph roots.
        ``incremental`` takes an :class:`repro.driver.session.
        IncrementalSession`: the session fingerprints the call graph,
        re-analyzes only the dirty cone, and replays persisted artifacts
        for everything else -- same reports, same order as a cold run.
        """
        if incremental is not None:
            return incremental.run(
                self, extensions, options=options, jobs=jobs,
                extension_factory=extension_factory,
                worker_timeout=worker_timeout,
            )
        if jobs and jobs > 1:
            from repro.driver.parallel import run_parallel
            return run_parallel(
                self, extensions, options=options, jobs=jobs,
                extension_factory=extension_factory,
                worker_timeout=worker_timeout, roots=roots,
            )
        return self.analysis(options).run(extensions, roots=roots)

    # -- reporting helpers ----------------------------------------------------------

    def total_source_bytes(self):
        return sum(c.source_bytes for c in self.compiled)

    def total_emitted_bytes(self):
        return sum(c.emitted_bytes for c in self.compiled)

    def total_functions(self):
        return sum(len(c.unit.functions()) for c in self.compiled)
