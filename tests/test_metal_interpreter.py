"""Negative-path tests for the metal action/callout interpreter."""

import pytest

from repro.cfront.parser import parse_expression
from repro.metal import compile_metal
from repro.metal.language import MetalError, compile_action, compile_callout
from repro.metal.patterns import MatchContext


class FakeCtx:
    def __init__(self, **bindings):
        self.bindings = {k: parse_expression(v) for k, v in bindings.items()}
        self.globals = {}
        self.errors = []
        self.engine = None
        self.point = None
        self.end_of_path = False

    def err(self, fmt, *args):
        self.errors.append(fmt % args if args else fmt)


class TestActionInterpreter:
    def test_unknown_identifier(self):
        action = compile_action('err("x", mystery_fn(v));', {"v": None})
        ctx = FakeCtx(v="p")
        with pytest.raises(MetalError):
            action(ctx)

    def test_arithmetic_and_comparison(self):
        action = compile_action(
            'if (mc_num_args(c) > 1 + 1) err("many"); else err("few");',
            {"c": None},
        )
        ctx = FakeCtx(c="f(1, 2, 3)")
        action(ctx)
        assert ctx.errors == ["many"]
        ctx = FakeCtx(c="f(1)")
        action(ctx)
        assert ctx.errors == ["few"]

    def test_logical_short_circuit(self):
        # the right operand would raise if evaluated
        action = compile_action(
            'if (0 && boom()) err("no"); else err("yes");', {}
        )
        ctx = FakeCtx()
        action(ctx)
        assert ctx.errors == ["yes"]

    def test_ternary(self):
        action = compile_action(
            'err("%s", mc_is_constant(e) ? "const" : "dyn");', {"e": None}
        )
        ctx = FakeCtx(e="42")
        action(ctx)
        assert ctx.errors == ["const"]

    def test_return_stops_block(self):
        action = compile_action('if (1) return; err("unreached");', {})
        ctx = FakeCtx()
        action(ctx)
        assert ctx.errors == []

    def test_global_assignment_and_readback(self):
        action = compile_action("total = total + 2;", {})
        ctx = FakeCtx()
        ctx.globals["total"] = 1
        action(ctx)
        assert ctx.globals["total"] == 3


class TestCalloutInterpreter:
    def test_unbound_hole_is_no_match(self):
        callout = compile_callout("mc_is_call_to(fn, \"gets\")", {"fn": None})
        point = parse_expression("gets(b)")
        # fn unbound: callout swallows the error and does not match
        assert not callout.match(point, {}, MatchContext(point))

    def test_degenerate_values(self):
        yes = compile_callout("1", {})
        no = compile_callout("0", {})
        point = parse_expression("anything()")
        assert yes.match(point, {}, MatchContext(point))
        assert not no.match(point, {}, MatchContext(point))

    def test_callout_sees_bindings(self):
        callout = compile_callout("mc_num_args(c) == 2", {"c": None})
        point = parse_expression("f(1, 2)")
        bindings = {"c": point}
        assert callout.match(point, bindings, MatchContext(point, bindings))


class TestCompileErrors:
    def test_unsupported_statement(self):
        # while loops are not part of the action fragment language
        ext_text = (
            "sm x { start: { f() } , { while (1) err(\"spin\"); } ; }"
        )
        ext = compile_metal(ext_text)
        with pytest.raises(MetalError):
            ext.transitions[0].action(FakeCtx())

    def test_err_with_no_args(self):
        action = compile_action('err("plain message");', {})
        ctx = FakeCtx()
        action(ctx)
        assert ctx.errors == ["plain message"]
