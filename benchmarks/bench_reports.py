"""Report-server benchmarks: served diffs vs cold re-analysis.

Dumped to ``BENCH_reports.json``: on a generated multi-module project
taken through N seeded edit bursts,

- the cold path: what a CI bot pays to answer "what changed?" by
  re-analyzing the whole tree from scratch after every burst,
- the served path: recording each burst's run once and answering the
  same question with ``GET /diff`` against the HTTP report server --
  a hash set-difference over stored runs, no analysis at all.

The shape assertions are the ISSUE acceptance criteria: the diff
answers name exactly the edited cone's deltas (pure drift bursts diff
empty), and the served diff is at least 10x faster than cold
re-analysis (the tripwire -- if answering from history stops paying
for itself, this benchmark fails).
"""

import functools
import json
import time
import urllib.request

from repro.codegen.project_gen import apply_function_edits, generate_project
from repro.driver.cli import _build_extensions
from repro.driver.project import Project
from repro.driver.report_server import ReportServer
from repro.driver.store import LocalStore
from repro.ranking import rank_reports
from repro.reports.history import RunHistory

SUMMARY_PATH = "BENCH_reports.json"
_summary = {}

CHECKER_NAMES = ("free", "lock")
bench_checkers = functools.partial(_build_extensions, CHECKER_NAMES, ())

#: Seeded edit bursts between recorded runs.
BURSTS = 3


def _dump_summary():
    with open(SUMMARY_PATH, "w") as handle:
        json.dump(_summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


def materialize(tmp_path, generated, name="proj"):
    root = tmp_path / name
    root.mkdir(exist_ok=True)
    for filename, text in generated.files.items():
        (root / filename).write_text(text)
    return str(root), sorted(
        str(root / filename)
        for filename in generated.files if filename.endswith(".c")
    )


def cold_analysis(root, paths):
    """One cold cacheless run; returns (seconds, ranked reports)."""
    start = time.perf_counter()
    project = Project(include_paths=[root])
    project.compile_files(paths)
    result = project.run(bench_checkers())
    reports = rank_reports(list(result.reports), "severity", result.log)
    return time.perf_counter() - start, reports


def http_get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def test_served_diff_beats_cold_reanalysis(benchmark, tmp_path):
    generated = generate_project(
        seed=13, n_modules=5, functions_per_module=40, bug_rate=0.1
    )
    backend = LocalStore(str(tmp_path / "store"))
    history = RunHistory(backend)

    # Take the tree through N seeded edit bursts, paying one cold
    # analysis per burst (the baseline a diff must beat) and recording
    # each burst's run.
    cold_times, run_ids = [], []
    current = generated
    for burst in range(BURSTS + 1):
        # Edits land in place (the tree evolves, its paths do not).
        root, paths = materialize(tmp_path, current, "proj")
        elapsed, reports = cold_analysis(root, paths)
        cold_times.append(elapsed)
        run_ids.append(history.record_run(
            reports, meta={"burst": burst}
        ))
        if burst < BURSTS:
            current, __ = apply_function_edits(current, k=2, seed=burst)

    server = ReportServer(backend=backend)
    server.start()
    try:
        # Answer "what changed?" for every burst from the server.
        diff_times, diffs = [], []
        for base, head in zip(run_ids, run_ids[1:]):
            start = time.perf_counter()
            diffs.append(http_get(
                "%s/diff?base=%s&head=%s" % (server.url, base, head)
            ))
            diff_times.append(time.perf_counter() - start)

        # Microbenchmark: one served diff round trip.
        base, head = run_ids[0], run_ids[-1]
        benchmark(
            http_get, "%s/diff?base=%s&head=%s" % (server.url, base, head)
        )
    finally:
        server.stop()

    # The edits bump literal values in place -- structurally unrelated
    # to any error path -- so every burst diff must come back empty:
    # stable hashes do not churn under edits that fix nothing.
    for diff in diffs:
        assert diff["new"] == [] and diff["resolved"] == []
        assert diff["unresolved"]

    cold_s = sum(cold_times[1:]) / len(cold_times[1:])
    diff_s = sum(diff_times) / len(diff_times)
    speedup = cold_s / max(diff_s, 1e-9)
    rows = {
        "total_files": len(paths),
        "bursts": BURSTS,
        "reports_per_run": len(
            history.load_run(run_ids[0])["reports"]
        ),
        "cold_reanalysis_s": round(cold_s, 4),
        "served_diff_s": round(diff_s, 4),
        "served_diff_speedup": round(speedup, 1),
        "diffs_all_empty": True,
    }
    print("\nserved diff vs cold re-analysis, %d files, %d bursts:"
          % (len(paths), BURSTS))
    print("  cold re-analysis   %.3fs per burst" % cold_s)
    print("  served GET /diff   %.4fs per burst  (x%.0f)"
          % (diff_s, speedup))

    # Acceptance tripwire: answering "what changed?" from recorded
    # history must be at least 10x cheaper than re-analyzing.
    assert speedup >= 10.0
    _summary["reports"] = rows
    _dump_summary()
